package analysis

// Held-lock-set dataflow. One analysis feeds two rules:
//
//   - guardedfield: a `// guarded by <mu>` field access must happen with
//     <mu> in the MUST-held set at that program point (flow-sensitive:
//     locking after the access, or on only one branch, no longer counts);
//   - lockstate: Lock without Unlock on some path to return/panic,
//     double-lock self-deadlocks, unlocking a mutex that is not held,
//     and module-wide lock-order inversions (mutex A taken under B in
//     one function, B taken under A in another — the deadlock shape the
//     serve snapshot swap / obs registry pairing must avoid).
//
// Locks are identified intraprocedurally by the rendered receiver
// expression ("c.mu"); for cross-function ordering they canonicalize to
// "<Type>.<field>" (field mutexes) or "<pkg>.<var>" (package-level).

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

const (
	lockW = 1 << iota // Lock
	lockR             // RLock
)

// lockOp is one mutex operation found in a CFG node.
type lockOp struct {
	op        string // Lock, RLock, Unlock, RUnlock
	expr      string // rendered receiver, e.g. "c.mu"
	canonical string // cross-function identity, "" for locals
	pos       token.Pos
}

// lockState is the per-point dataflow fact.
type lockState struct {
	must     map[string]int       // held on every path (kind bits)
	may      map[string]int       // held on some path
	deferred map[string]bool      // unlock deferred on every path
	site     map[string]token.Pos // earliest Lock position per may-held lock
	canon    map[string]string    // rendered expr -> canonical name, recorded at acquisition
}

func newLockState() lockState {
	return lockState{
		must:     map[string]int{},
		may:      map[string]int{},
		deferred: map[string]bool{},
		site:     map[string]token.Pos{},
		canon:    map[string]string{},
	}
}

func (s lockState) clone() lockState {
	out := newLockState()
	for k, v := range s.must {
		out.must[k] = v
	}
	for k, v := range s.may {
		out.may[k] = v
	}
	for k := range s.deferred {
		out.deferred[k] = true
	}
	for k, v := range s.site {
		out.site[k] = v
	}
	for k, v := range s.canon {
		out.canon[k] = v
	}
	return out
}

func lockJoin(a, b lockState) lockState {
	out := newLockState()
	for k, av := range a.must {
		if bv, ok := b.must[k]; ok {
			out.must[k] = av | bv
		}
	}
	for k, v := range a.may {
		out.may[k] = v
	}
	for k, v := range b.may {
		out.may[k] |= v
	}
	for k := range a.deferred {
		if b.deferred[k] {
			out.deferred[k] = true
		}
	}
	for k, v := range a.site {
		out.site[k] = v
	}
	for k, v := range b.site {
		if prev, ok := out.site[k]; !ok || v < prev {
			out.site[k] = v
		}
	}
	for k, v := range a.canon {
		out.canon[k] = v
	}
	for k, v := range b.canon {
		out.canon[k] = v
	}
	return out
}

func lockEqual(a, b lockState) bool {
	return intMapEqual(a.must, b.must) && intMapEqual(a.may, b.may) &&
		boolMapEqual(a.deferred, b.deferred) && posMapEqual(a.site, b.site) &&
		strMapEqual(a.canon, b.canon)
}

func strMapEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func intMapEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func boolMapEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func posMapEqual(a, b map[string]token.Pos) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// isMutexType reports whether t (or its pointee) is sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockOpOf recognizes a mutex method call, resolving its receiver
// rendering and canonical identity.
func lockOpOf(pkg *Package, call *ast.CallExpr) *lockOp {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil
	}
	if !isMutexType(pkg.Info.TypeOf(sel.X)) {
		return nil
	}
	return &lockOp{
		op:        name,
		expr:      types.ExprString(sel.X),
		canonical: canonicalLock(pkg, sel.X),
		pos:       call.Pos(),
	}
}

// canonicalLock names a mutex across functions: "Type.field" for a
// struct-field mutex, "pkg.var" for a package-level one, "" for locals
// (which cannot participate in cross-function ordering).
func canonicalLock(pkg *Package, recv ast.Expr) string {
	switch e := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		if selection := pkg.Info.Selections[e]; selection != nil && selection.Kind() == types.FieldVal {
			t := selection.Recv()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + e.Sel.Name
			}
		}
	case *ast.Ident:
		if obj := pkg.Info.ObjectOf(e); obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
				return shortFuncName(v.Pkg().Path()) + "." + v.Name()
			}
		}
	}
	return ""
}

// lockFlow is the shared per-function analysis driver.
type lockFlow struct {
	pkg *Package
}

func (lf *lockFlow) transfer(n ast.Node, s lockState) lockState {
	switch d := n.(type) {
	case *ast.DeferStmt:
		return lf.transferDefer(d, s)
	case *ast.GoStmt:
		// The goroutine body runs concurrently; its lock operations are
		// not this goroutine's state.
		return s
	}
	out := s
	mutated := false
	inspectHeader(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		op := lockOpOf(lf.pkg, call)
		if op == nil {
			return true
		}
		if !mutated {
			out = out.clone()
			mutated = true
		}
		switch op.op {
		case "Lock", "RLock":
			kind := lockW
			if op.op == "RLock" {
				kind = lockR
			}
			out.must[op.expr] |= kind
			out.may[op.expr] |= kind
			if prev, ok := out.site[op.expr]; !ok || op.pos < prev {
				out.site[op.expr] = op.pos
			}
			if op.canonical != "" {
				out.canon[op.expr] = op.canonical
			}
		case "Unlock", "RUnlock":
			delete(out.must, op.expr)
			delete(out.may, op.expr)
			delete(out.site, op.expr)
			delete(out.canon, op.expr)
		}
		return true
	})
	return out
}

// transferDefer records deferred unlocks, including the common
// `defer func() { ...Unlock()... }()` shape.
func (lf *lockFlow) transferDefer(d *ast.DeferStmt, s lockState) lockState {
	var released []string
	if op := lockOpOf(lf.pkg, d.Call); op != nil && (op.op == "Unlock" || op.op == "RUnlock") {
		released = append(released, op.expr)
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if op := lockOpOf(lf.pkg, call); op != nil && (op.op == "Unlock" || op.op == "RUnlock") {
					released = append(released, op.expr)
				}
			}
			return true
		})
	}
	if len(released) == 0 {
		return s
	}
	out := s.clone()
	for _, expr := range released {
		out.deferred[expr] = true
	}
	return out
}

// runLockFlow computes the per-block input states for one function.
func runLockFlow(m *Module, pkg *Package, body *ast.BlockStmt) (*dataflow[lockState], map[*cfgBlock]lockState) {
	lf := &lockFlow{pkg: pkg}
	d := &dataflow[lockState]{
		cfg:      m.cfgOf(body),
		entry:    newLockState(),
		join:     lockJoin,
		equal:    lockEqual,
		transfer: lf.transfer,
	}
	return d, d.run()
}

// lockSummary is the interprocedural fact: canonical locks a function
// (transitively) acquires, with a witness position for diagnostics.
type lockSummary struct {
	acquires map[string]token.Pos
}

// lockSummaries memoizes, per module, which canonical locks each
// function's call tree acquires.
func (m *Module) lockSummaries() map[string]*lockSummary {
	if m.locksOK {
		return m.locks
	}
	sums := map[string]*lockSummary{}
	for _, name := range m.funcNames {
		sums[name] = &lockSummary{acquires: map[string]token.Pos{}}
	}
	for sweep := 0; sweep < maxFixpointSweeps; sweep++ {
		changed := false
		for _, name := range m.funcNames {
			info := m.funcs[name]
			sum := sums[name]
			ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // closures may run on another goroutine
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if op := lockOpOf(info.Pkg, call); op != nil {
					if (op.op == "Lock" || op.op == "RLock") && op.canonical != "" {
						if _, ok := sum.acquires[op.canonical]; !ok {
							sum.acquires[op.canonical] = op.pos
							changed = true
						}
					}
					return true
				}
				if c := m.callee(info.Pkg, call); c != nil {
					callees := sums[c.Name]
					keys := make([]string, 0, len(callees.acquires))
					for k := range callees.acquires {
						keys = append(keys, k)
					}
					sort.Strings(keys)
					for _, k := range keys {
						if _, ok := sum.acquires[k]; !ok {
							sum.acquires[k] = call.Pos()
							changed = true
						}
					}
				}
				return true
			})
		}
		if !changed {
			break
		}
	}
	m.locks = sums
	m.locksOK = true
	return sums
}

// lockPair is one observed ordering: `before` held while `after` was
// acquired at pos (directly or through the named callee chain).
type lockPair struct {
	before, after string
	pos           token.Pos
	pkg           *Package
	via           string // callee full name, "" for a direct Lock
}

// lockOrderPairs collects every held-while-acquiring pair in the
// module, memoized. Only canonically-named locks participate.
func (m *Module) lockOrderPairs() []lockPair {
	if m.pairsOK {
		return m.lockPairs
	}
	sums := m.lockSummaries()
	var pairs []lockPair
	for _, name := range m.funcNames {
		info := m.funcs[name]
		d, states := runLockFlow(m, info.Pkg, info.Decl.Body)
		d.replay(states, func(n ast.Node, s lockState) {
			inspectHeader(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				held := heldCanonicals(s)
				if len(held) == 0 {
					return true
				}
				if op := lockOpOf(info.Pkg, call); op != nil {
					if (op.op == "Lock" || op.op == "RLock") && op.canonical != "" {
						for _, h := range held {
							if h != op.canonical {
								pairs = append(pairs, lockPair{before: h, after: op.canonical, pos: op.pos, pkg: info.Pkg})
							}
						}
					}
					return true
				}
				if c := m.callee(info.Pkg, call); c != nil {
					acq := sums[c.Name].acquires
					keys := make([]string, 0, len(acq))
					for k := range acq {
						keys = append(keys, k)
					}
					sort.Strings(keys)
					for _, k := range keys {
						for _, h := range held {
							if h != k {
								pairs = append(pairs, lockPair{before: h, after: k, pos: call.Pos(), pkg: info.Pkg, via: c.Name})
							}
						}
					}
				}
				return true
			})
		}, nil)
	}
	m.lockPairs = pairs
	m.pairsOK = true
	return pairs
}

// heldCanonicals lists the canonical names of may-held locks, sorted.
// Only locks whose acquisition site could be canonicalized (struct
// fields, package-level vars) participate in cross-function ordering.
func heldCanonicals(s lockState) []string {
	var out []string
	for expr := range s.may {
		if c := s.canon[expr]; c != "" {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

func init() {
	register(Rule{
		Name: "lockstate",
		Doc: "held-lock-set analysis: Lock without Unlock on some path to " +
			"return/panic (defer the unlock), double-lock self-deadlocks, " +
			"unlocking a mutex that is not held, and lock-order inversions " +
			"across functions (A under B here, B under A elsewhere)",
		Run: runLockState,
	})
}

func runLockState(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockBalance(pass, fd)
		}
	}
	reportInversions(pass)
}

// checkLockBalance reports leak/double-lock/unheld-unlock findings for
// one function.
func checkLockBalance(pass *Pass, fd *ast.FuncDecl) {
	d, states := runLockFlow(pass.Mod, pass.Pkg, fd.Body)
	d.replay(states, func(n ast.Node, s lockState) {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			return
		}
		if _, isGo := n.(*ast.GoStmt); isGo {
			return
		}
		inspectHeader(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			op := lockOpOf(pass.Pkg, call)
			if op == nil {
				return true
			}
			held := s.may[op.expr]
			switch op.op {
			case "Lock":
				if held != 0 {
					pass.Reportf(op.pos,
						"%s.Lock() while %s may already be held on a path to this point self-deadlocks; unlock first or restructure",
						op.expr, op.expr)
				}
			case "RLock":
				if held&lockW != 0 {
					pass.Reportf(op.pos,
						"%s.RLock() while %s may be write-locked on a path to this point self-deadlocks; unlock first or restructure",
						op.expr, op.expr)
				}
			case "Unlock", "RUnlock":
				if held == 0 {
					pass.Reportf(op.pos,
						"%s.%s() but %s is not locked on any path to this point",
						op.expr, op.op, op.expr)
				}
			}
			return true
		})
	}, func(exit lockState) {
		leaked := make([]string, 0, len(exit.may))
		for expr := range exit.may {
			if !exit.deferred[expr] {
				leaked = append(leaked, expr)
			}
		}
		sort.Strings(leaked)
		for _, expr := range leaked {
			pass.Reportf(exit.site[expr],
				"%s.Lock() is not released on every path out of %s (early return or panic leaks the lock); defer %s.Unlock() right after locking",
				expr, funcName(fd), expr)
		}
	})
}

// reportInversions emits lock-order-inversion findings whose first
// acquisition site lies in this package.
func reportInversions(pass *Pass) {
	pairs := pass.Mod.lockOrderPairs()
	for _, p := range pairs {
		if p.pkg != pass.Pkg {
			continue
		}
		for _, q := range pairs {
			if q.before == p.after && q.after == p.before {
				qpos := q.pkg.Fset.Position(q.pos)
				via := ""
				if p.via != "" {
					via = " (through " + shortFuncName(p.via) + ")"
				}
				pass.Reportf(p.pos,
					"lock order inversion: %s acquired while holding %s%s, but %s is acquired while holding %s at %s:%d — pick one global order to avoid deadlock",
					p.after, p.before, via, p.before, p.after, relBase(qpos.Filename), qpos.Line)
				break
			}
		}
	}
}

func relBase(filename string) string {
	if i := strings.LastIndexByte(filename, '/'); i >= 0 {
		return filename[i+1:]
	}
	return filename
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		return "method " + fd.Name.Name
	}
	return "function " + fd.Name.Name
}
