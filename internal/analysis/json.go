package analysis

import (
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// JSONFinding is the machine-readable form of one Finding; File is
// relative to the report root so CI artifacts do not leak absolute
// build paths.
type JSONFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// Report is the `qpplint -json` document: findings in diagnostic order
// plus per-rule counts (every registered rule appears, zeros included,
// so dashboards can distinguish "rule clean" from "rule missing").
type Report struct {
	Findings []JSONFinding  `json:"findings"`
	ByRule   map[string]int `json:"by_rule"`
	Total    int            `json:"total"`
}

// NewReport converts findings into a Report, relativizing file paths
// against root (absolute paths outside root are kept as-is). ran lists
// the rules that actually executed (nil means the full registry): only
// those get a zero entry, so a partial `-rules` run does not claim
// unselected rules are clean.
func NewReport(root string, ran []Rule, findings []Finding) Report {
	rep := Report{
		Findings: make([]JSONFinding, 0, len(findings)),
		ByRule:   map[string]int{},
		Total:    len(findings),
	}
	if ran == nil {
		ran = Rules()
	}
	for _, r := range ran {
		rep.ByRule[r.Name] = 0
	}
	for _, f := range findings {
		file := f.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		rep.Findings = append(rep.Findings, JSONFinding{
			File:    file,
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Rule:    f.Rule,
			Message: f.Message,
		})
		rep.ByRule[f.Rule]++
	}
	return rep
}

// Summary renders the per-rule counts as one line, non-zero rules
// first: `3 findings (hotalloc:2 lockstate:1; clean: errdrop, ...)`.
func (r Report) Summary() string {
	names := make([]string, 0, len(r.ByRule))
	for name := range r.ByRule {
		names = append(names, name)
	}
	sort.Strings(names)
	var hits, clean []string
	for _, name := range names {
		if n := r.ByRule[name]; n > 0 {
			hits = append(hits, name+":"+strconv.Itoa(n))
		} else {
			clean = append(clean, name)
		}
	}
	var b strings.Builder
	b.WriteString(strconv.Itoa(r.Total))
	if r.Total == 1 {
		b.WriteString(" finding")
	} else {
		b.WriteString(" findings")
	}
	b.WriteString(" (")
	if len(hits) > 0 {
		b.WriteString(strings.Join(hits, " "))
	}
	if len(clean) > 0 {
		if len(hits) > 0 {
			b.WriteString("; ")
		}
		b.WriteString("clean: ")
		b.WriteString(strings.Join(clean, ", "))
	}
	b.WriteString(")")
	return b.String()
}
