package analysis

// Control-flow graph construction. Every flow-sensitive pass in this
// package (guardedfield, lockstate, the taint half of nondeterminism,
// hotalloc's reachability gating) runs over the same per-function CFG:
// basic blocks of statement-granularity nodes connected by the edges a
// real execution can take, including branch joins, loop back-edges,
// early returns, and the panic/os.Exit edges that matter for
// lock-balance checking.
//
// Structured statements are decomposed: an *ast.IfStmt never appears as
// a block node — its Cond expression does, and its branches become
// separate blocks. The only composite nodes stored in blocks are
// *ast.RangeStmt and *ast.TypeSwitchStmt headers (their loop/switch
// variables belong to the header), so transfer functions must walk
// block nodes with inspectHeader, which visits exactly the header's own
// expressions and never descends into a nested body or function
// literal.

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one basic block: nodes execute in order, then control
// moves to one of succs. Blocks with no successors are terminal
// (normally only the exit block).
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body. Entry has no
// predecessors; every return, panic, or os.Exit edge leads to exit,
// which holds no nodes.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

// reachable returns the blocks reachable from entry in reverse
// post-order, the iteration order the fixpoint engine uses.
func (c *funcCFG) reachable() []*cfgBlock {
	seen := make(map[*cfgBlock]bool, len(c.blocks))
	var post []*cfgBlock
	var visit func(b *cfgBlock)
	visit = func(b *cfgBlock) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.succs {
			visit(s)
		}
		post = append(post, b)
	}
	visit(c.entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// buildCFG constructs the CFG of one function body (a FuncDecl's or
// FuncLit's BlockStmt). Nested function literals are not flattened into
// the enclosing graph; callers analyze their bodies separately.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{cfg: &funcCFG{}, labels: map[string]*labelTarget{}}
	b.cfg.entry = b.newBlock()
	b.cfg.exit = b.newBlock()
	b.cur = b.cfg.entry
	b.stmt(body)
	b.link(b.cur, b.cfg.exit)
	return b.cfg
}

// labelTarget resolves labeled break/continue/goto. For a labeled loop,
// brk/cont point at the loop's after/continue blocks; for any labeled
// statement, gotoBlk is the block the statement starts.
type labelTarget struct {
	brk, cont *cfgBlock
	gotoBlk   *cfgBlock
}

// loopFrame is one enclosing breakable construct. cont is nil for
// switch/select frames (continue skips them).
type loopFrame struct {
	brk, cont *cfgBlock
	label     string
}

type cfgBuilder struct {
	cfg    *funcCFG
	cur    *cfgBlock // nil after a terminating statement
	frames []loopFrame
	labels map[string]*labelTarget
	// pendingLabel names the label attached to the next loop/switch
	// statement, so `continue outer` can find its frame.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.cfg.blocks)}
	b.cfg.blocks = append(b.cfg.blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
}

// startBlock begins a new block with an edge from `from` (which may be
// nil for unreachable starts) and makes it current.
func (b *cfgBuilder) startBlock(from *cfgBlock) *cfgBlock {
	blk := b.newBlock()
	b.link(from, blk)
	b.cur = blk
	return blk
}

// add appends a node to the current block. Nodes after a terminating
// statement (return/panic) are unreachable; they go to a fresh dangling
// block that the fixpoint engine never visits.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) labelFor(name string) *labelTarget {
	t := b.labels[name]
	if t == nil {
		t = &labelTarget{}
		b.labels[name] = t
	}
	return t
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, t := range s.List {
			b.stmt(t)
		}
	case *ast.LabeledStmt:
		t := b.labelFor(s.Label.Name)
		// A label is a goto target: give the labeled statement its own
		// block so backward gotos have somewhere to land.
		if t.gotoBlk == nil {
			t.gotoBlk = b.newBlock()
		}
		b.link(b.cur, t.gotoBlk)
		b.cur = t.gotoBlk
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		b.startBlock(cond)
		b.stmt(s.Body)
		thenEnd := b.cur
		elseEnd := cond // no else: condition falls through
		if s.Else != nil {
			b.startBlock(cond)
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		after := b.newBlock()
		b.link(thenEnd, after)
		b.link(elseEnd, after)
		b.cur = after
	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.startBlock(b.cur)
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		if s.Cond != nil {
			b.link(head, after)
		}
		b.pushFrame(loopFrame{brk: after, cont: post, label: label})
		b.startBlock(head)
		b.stmt(s.Body)
		if s.Post != nil {
			b.link(b.cur, post)
			b.cur = post
			b.stmt(s.Post)
			b.link(b.cur, head)
		} else {
			b.link(b.cur, head)
		}
		b.popFrame()
		b.cur = after
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.startBlock(b.cur)
		// The RangeStmt itself is the header node: passes read Key,
		// Value and X from it via inspectHeader.
		b.add(s)
		after := b.newBlock()
		b.link(head, after) // empty collection
		b.pushFrame(loopFrame{brk: after, cont: head, label: label})
		b.startBlock(head)
		b.stmt(s.Body)
		b.link(b.cur, head)
		b.popFrame()
		b.cur = after
	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body, b.cur, label, true)
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		// The TypeSwitchStmt header carries the `v := x.(type)` assign;
		// passes read it via inspectHeader.
		b.add(s)
		b.caseClauses(s.Body, b.cur, label, true)
	case *ast.SelectStmt:
		label := b.takeLabel()
		b.caseClauses(s.Body, b.cur, label, false)
	case *ast.ReturnStmt:
		b.add(s)
		b.link(b.cur, b.cfg.exit)
		b.cur = nil
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			b.link(b.cur, b.branchTarget(s.Label, false))
			b.cur = nil
		case token.CONTINUE:
			b.link(b.cur, b.branchTarget(s.Label, true))
			b.cur = nil
		case token.GOTO:
			if s.Label != nil {
				t := b.labelFor(s.Label.Name)
				if t.gotoBlk == nil {
					t.gotoBlk = b.newBlock()
				}
				b.link(b.cur, t.gotoBlk)
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by caseClauses; reaching here (malformed code)
			// just ends the block.
		}
	case *ast.ExprStmt:
		b.add(s)
		if isTerminatingCall(s.X) {
			b.link(b.cur, b.cfg.exit)
			b.cur = nil
		}
	case nil:
		// Absent optional statement.
	default:
		// Assign, Decl, IncDec, Send, Defer, Go, Empty: straight-line.
		b.add(s)
	}
}

// caseClauses wires the clause bodies of a switch/type-switch/select.
// withFallthrough enables `fallthrough` chaining between consecutive
// clauses; hasDefaultless switches fall through to after.
func (b *cfgBuilder) caseClauses(body *ast.BlockStmt, head *cfgBlock, label string, withFallthrough bool) {
	after := b.newBlock()
	b.pushFrame(loopFrame{brk: after, label: label})
	hasDefault := false

	// First materialize one block per clause so fallthrough can link
	// clause i to clause i+1.
	type clause struct {
		blk   *cfgBlock
		stmts []ast.Stmt
		exprs []ast.Expr // case guard expressions / select comm stmt
		comm  ast.Stmt
	}
	var clauses []clause
	for _, raw := range body.List {
		c := clause{blk: b.newBlock()}
		switch cc := raw.(type) {
		case *ast.CaseClause:
			c.stmts = cc.Body
			c.exprs = cc.List
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			c.stmts = cc.Body
			c.comm = cc.Comm
			if cc.Comm == nil {
				hasDefault = true
			}
		}
		b.link(head, c.blk)
		clauses = append(clauses, c)
	}
	if !hasDefault || len(clauses) == 0 {
		// No default: the switch can match nothing; an empty `select{}`
		// blocks forever but analysis treats after as its only exit.
		b.link(head, after)
	}
	for i, c := range clauses {
		b.cur = c.blk
		for _, e := range c.exprs {
			b.add(e)
		}
		if c.comm != nil {
			b.stmt(c.comm)
		}
		fellThrough := false
		for _, st := range c.stmts {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && withFallthrough {
				if i+1 < len(clauses) {
					b.link(b.cur, clauses[i+1].blk)
				}
				b.cur = nil
				fellThrough = true
				break
			}
			b.stmt(st)
		}
		if !fellThrough {
			b.link(b.cur, after)
		}
	}
	b.popFrame()
	b.cur = after
}

func (b *cfgBuilder) pushFrame(f loopFrame) { b.frames = append(b.frames, f) }
func (b *cfgBuilder) popFrame()             { b.frames = b.frames[:len(b.frames)-1] }

// branchTarget resolves break/continue, labeled or not, to its block.
// Malformed labels fall back to the function exit so construction never
// fails on code that does not compile cleanly.
func (b *cfgBuilder) branchTarget(label *ast.Ident, isContinue bool) *cfgBlock {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if isContinue && f.cont == nil {
			continue // switch/select frames are transparent to continue
		}
		if label == nil || f.label == label.Name {
			if isContinue {
				return f.cont
			}
			return f.brk
		}
	}
	return b.cfg.exit
}

// isTerminatingCall reports whether an expression statement never
// returns: panic(...), os.Exit(...), log.Fatal*(...). These edges feed
// the lock-balance pass — a panic between Lock and Unlock leaks the
// lock unless the unlock is deferred.
func isTerminatingCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name {
		case "os":
			return fun.Sel.Name == "Exit"
		case "log":
			switch fun.Sel.Name {
			case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
				return true
			}
		case "runtime":
			return fun.Sel.Name == "Goexit"
		}
	}
	return false
}

// inspectHeader walks the expressions a block node evaluates itself,
// without descending into nested statement bodies (which live in their
// own blocks) or function literals (which are analyzed as separate
// functions). This is the only legal way for a transfer function to
// examine a CFG node.
func inspectHeader(n ast.Node, f func(ast.Node) bool) {
	walk := func(x ast.Node) {
		if x == nil {
			return
		}
		ast.Inspect(x, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				f(m) // visible as a node, body not entered
				return false
			}
			return f(m)
		})
	}
	switch n := n.(type) {
	case *ast.RangeStmt:
		walk(n.Key)
		walk(n.Value)
		walk(n.X)
	case *ast.TypeSwitchStmt:
		walk(n.Assign)
	default:
		walk(n)
	}
}
