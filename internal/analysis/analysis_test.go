package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches the golden expectation comments in fixture packages:
// a trailing `// want `regex“ on the offending line.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

func ruleByName(t *testing.T, name string) Rule {
	t.Helper()
	for _, r := range Rules() {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("rule %q is not registered", name)
	return Rule{}
}

func loadFixture(t *testing.T, fixture, asPath string) *Package {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", fixture), asPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixture, err)
	}
	for _, e := range pkg.TypeErrors {
		t.Fatalf("fixture %s has type errors: %v", fixture, e)
	}
	return pkg
}

// checkFixture runs one rule over a fixture package and compares the
// findings against its `// want` comments: every want must be matched by
// a finding on its line, and every finding must be covered by a want.
func checkFixture(t *testing.T, ruleName, fixture, asPath string) {
	t.Helper()
	pkg := loadFixture(t, fixture, asPath)
	findings := Check(pkg, []Rule{ruleByName(t, ruleName)})

	type lineKey struct {
		file string
		line int
	}
	wants := map[lineKey]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				wants[lineKey{pos.Filename, pos.Line}] = regexp.MustCompile(m[1])
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", fixture)
	}

	matched := map[lineKey]bool{}
	for _, fd := range findings {
		k := lineKey{fd.Pos.Filename, fd.Pos.Line}
		re, ok := wants[k]
		if !ok {
			t.Errorf("unexpected finding: %s", fd)
			continue
		}
		if !re.MatchString(fd.Message) {
			t.Errorf("finding %q at %s:%d does not match want %q", fd.Message, k.file, k.line, re)
			continue
		}
		matched[k] = true
	}
	for k, re := range wants {
		if !matched[k] {
			t.Errorf("missing finding at %s:%d (want %q)", k.file, k.line, re)
		}
	}
}

func TestNondeterminismRule(t *testing.T) {
	// The fixture is loaded under a deterministic-core import path so the
	// path gate opens.
	checkFixture(t, "nondeterminism", "nondet", "qpp/internal/exec")
}

func TestNondeterminismIgnoresNonCorePackages(t *testing.T) {
	pkg := loadFixture(t, "nondet", "example.com/nondet")
	if findings := Check(pkg, []Rule{ruleByName(t, "nondeterminism")}); len(findings) != 0 {
		t.Fatalf("nondeterminism fired outside the deterministic core: %v", findings)
	}
}

// The hotalloc fixture mirrors nondeterminism's two-load pattern: the
// rule only watches the executor hot-path packages.
func TestHotAllocRule(t *testing.T) {
	checkFixture(t, "hotalloc", "hotalloc", "qpp/internal/exec")
}

// The serving layer is request-hot: the same fixture must trip the rule
// when loaded under the qppserve import paths too.
func TestHotAllocCoversServingPackages(t *testing.T) {
	checkFixture(t, "hotalloc", "hotalloc", "qpp/internal/serve")
	checkFixture(t, "hotalloc", "hotalloc", "qpp/cmd/qppserve")
}

// The batch engine's OpenBatch/NextBatch/ReScanBatch are hot entry
// points like Open/Next/ReScan: per-batch boxing must be reported, and
// the same pattern in a cold method must stay silent (the fixture's
// coldDescribe carries no want comment).
func TestHotAllocCoversBatchEntryPoints(t *testing.T) {
	checkFixture(t, "hotalloc", "hotalloc3", "qpp/internal/exec")
}

func TestHotAllocIgnoresColdPackages(t *testing.T) {
	pkg := loadFixture(t, "hotalloc", "example.com/hotalloc")
	if findings := Check(pkg, []Rule{ruleByName(t, "hotalloc")}); len(findings) != 0 {
		t.Fatalf("hotalloc fired outside the hot-path packages: %v", findings)
	}
}

func TestMapOrderRule(t *testing.T) { checkFixture(t, "maporder", "maporder", "example.com/maporder") }
func TestGuardedFieldRule(t *testing.T) {
	checkFixture(t, "guardedfield", "guarded", "example.com/guarded")
}
func TestFloatEqRule(t *testing.T) { checkFixture(t, "floateq", "floateq", "example.com/floateq") }
func TestErrDropRule(t *testing.T) { checkFixture(t, "errdrop", "errdrop", "example.com/errdrop") }

// TestSuppressionComments asserts the escape hatch works for every rule:
// each fixture contains one deliberately-violating, suppressed line, so
// stripping the suppressions must yield strictly more findings.
func TestSuppressionComments(t *testing.T) {
	cases := []struct {
		rule, fixture, asPath string
	}{
		{"nondeterminism", "nondet", "qpp/internal/exec"},
		{"hotalloc", "hotalloc", "qpp/internal/exec"},
		{"maporder", "maporder", "example.com/maporder"},
		{"guardedfield", "guarded", "example.com/guarded"},
		{"floateq", "floateq", "example.com/floateq"},
		{"errdrop", "errdrop", "example.com/errdrop"},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			pkg := loadFixture(t, tc.fixture, tc.asPath)
			rule := ruleByName(t, tc.rule)

			suppressed := Check(pkg, []Rule{rule})

			// Re-run without the suppression filter.
			var raw []Finding
			pass := &Pass{Pkg: pkg, Mod: NewModule([]*Package{pkg}), rule: rule.Name, findings: &raw}
			rule.Run(pass)

			if len(raw) <= len(suppressed) {
				t.Fatalf("expected suppression comments to hide findings: raw=%d suppressed=%d",
					len(raw), len(suppressed))
			}
		})
	}
}

func TestRuleRegistry(t *testing.T) {
	rules := Rules()
	want := []string{"errdrop", "floateq", "guardedfield", "hotalloc", "lockstate", "maporder", "nondeterminism", "unusedignore"}
	var got []string
	for _, r := range rules {
		got = append(got, r.Name)
		if r.Doc == "" {
			t.Errorf("rule %s has no doc", r.Name)
		}
		if r.Run == nil {
			t.Errorf("rule %s has no run function", r.Name)
		}
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("registered rules = %v, want %v", got, want)
	}
}

func TestFindingFormat(t *testing.T) {
	pkg := loadFixture(t, "floateq", "example.com/floateq")
	findings := Check(pkg, []Rule{ruleByName(t, "floateq")})
	if len(findings) == 0 {
		t.Fatal("no findings to format")
	}
	s := findings[0].String()
	if !regexp.MustCompile(`^.+\.go:\d+: \[floateq\] .+$`).MatchString(s) {
		t.Fatalf("finding format %q is not `file:line: [rule] message`", s)
	}
	if !strings.Contains(s, "floateq.go") {
		t.Fatalf("finding %q does not name the fixture file", s)
	}
}
