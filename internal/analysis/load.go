package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package ready for rule application. A
// directory yields up to two Packages: the base package merged with its
// in-package test files, and (when present) the external `foo_test`
// package.
type Package struct {
	// Path is the import path ("qpp/internal/qpp"); external test
	// packages carry a ".test" suffix.
	Path string
	// Dir is the absolute directory the files came from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-checking errors. Rules still run on
	// packages with type errors (the AST and partial type info remain
	// usable), but the CLI reports them.
	TypeErrors []error
}

// IsTestFile reports whether the position falls in a *_test.go file.
func (p *Package) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// loader type-checks an entire module with no tooling beyond the
// standard library: module-internal imports resolve to packages it has
// already checked, everything else falls through to the source importer
// (which type-checks the standard library from GOROOT source).
type loader struct {
	fset *token.FileSet
	std  types.ImporterFrom
	reg  map[string]*types.Package // import path -> checked base package
}

func newLoader(fset *token.FileSet) *loader {
	return &loader{
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		reg:  map[string]*types.Package{},
	}
}

func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.reg[path]; ok {
		return p, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// check type-checks one file set as a package, collecting soft errors.
func (l *loader) check(path string, files []*ast.File) (*types.Package, *types.Info, []error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var errs []error
	cfg := &types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { errs = append(errs, err) },
	}
	// The returned error is just the first one delivered to cfg.Error,
	// where every error is already collected.
	pkg, _ := cfg.Check(path, l.fset, files, info) //qpplint:ignore errdrop
	return pkg, info, errs
}

// rawPkg is a parsed-but-not-yet-checked directory grouping.
type rawPkg struct {
	path    string
	dir     string
	base    []*ast.File // non-test files
	inTest  []*ast.File // package foo *_test.go files
	extTest []*ast.File // package foo_test files
	imports []string    // module-internal imports of base files
}

// LoadModule parses and type-checks every buildable package under root
// (a module directory containing go.mod). testdata, vendor, hidden and
// underscore-prefixed directories are skipped, mirroring the go tool.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	raws, err := parseTree(fset, root, modPath)
	if err != nil {
		return nil, err
	}

	byPath := map[string]*rawPkg{}
	for _, r := range raws {
		byPath[r.path] = r
	}
	order, err := topoSort(raws, byPath)
	if err != nil {
		return nil, err
	}

	l := newLoader(fset)
	// Phase A: check base packages (no test files) in dependency order and
	// register them so module-internal imports resolve. Import cycles
	// through test files are legal in Go precisely because the imported
	// package never includes the importer's tests; registering base-only
	// packages preserves that property.
	for _, r := range order {
		if len(r.base) == 0 {
			continue
		}
		pkg, _, _ := l.check(r.path, r.base)
		l.reg[r.path] = pkg
	}

	// Phase B: re-check each package with its in-package test files merged
	// (this is the Package rules run on), plus the external test package.
	var out []*Package
	for _, r := range order {
		if len(r.base) > 0 {
			files := append(append([]*ast.File{}, r.base...), r.inTest...)
			pkg, info, errs := l.check(r.path, files)
			out = append(out, &Package{
				Path: r.path, Dir: r.dir, Fset: fset,
				Files: files, Types: pkg, Info: info, TypeErrors: errs,
			})
		}
		if len(r.extTest) > 0 {
			pkg, info, errs := l.check(r.path+".test", r.extTest)
			out = append(out, &Package{
				Path: r.path + ".test", Dir: r.dir, Fset: fset,
				Files: r.extTest, Types: pkg, Info: info, TypeErrors: errs,
			})
		}
	}
	return out, nil
}

// LoadDir parses and type-checks a single directory as one package under
// the given import path, resolving only standard-library imports. It
// exists for fixture packages under testdata, where the import path
// doubles as a way to exercise path-gated rules.
func LoadDir(dir, asPath string) (*Package, error) {
	fset := token.NewFileSet()
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	l := newLoader(fset)
	pkg, info, errs := l.check(asPath, files)
	return &Package{
		Path: asPath, Dir: dir, Fset: fset,
		Files: files, Types: pkg, Info: info, TypeErrors: errs,
	}, nil
}

// LoadDirs type-checks several fixture directories as one mini-module:
// each entry maps an import path to a directory, checked in slice order
// with earlier packages importable by later ones. It exists for
// interprocedural fixtures, where a core package must call into a
// helper package to exercise cross-package chains.
func LoadDirs(dirs []struct{ Dir, AsPath string }) ([]*Package, error) {
	fset := token.NewFileSet()
	l := newLoader(fset)
	var out []*Package
	for _, d := range dirs {
		names, err := goFilesIn(d.Dir)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("analysis: no .go files in %s", d.Dir)
		}
		var files []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(d.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, errs := l.check(d.AsPath, files)
		l.reg[d.AsPath] = pkg
		out = append(out, &Package{
			Path: d.AsPath, Dir: d.Dir, Fset: fset,
			Files: files, Types: pkg, Info: info, TypeErrors: errs,
		})
	}
	return out, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// parseTree walks the module tree and parses every buildable .go file,
// grouping by directory.
func parseTree(fset *token.FileSet, root, modPath string) ([]*rawPkg, error) {
	var raws []*rawPkg
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		r := &rawPkg{path: importPath, dir: path}
		for _, fname := range names {
			full := filepath.Join(path, fname)
			f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("analysis: %w", err)
			}
			if !buildIncluded(f) {
				continue
			}
			pkgName := f.Name.Name
			switch {
			case strings.HasSuffix(pkgName, "_test"):
				r.extTest = append(r.extTest, f)
			case strings.HasSuffix(fname, "_test.go"):
				r.inTest = append(r.inTest, f)
			default:
				r.base = append(r.base, f)
				r.imports = appendModImports(r.imports, f, modPath)
			}
		}
		if len(r.base)+len(r.inTest)+len(r.extTest) > 0 {
			raws = append(raws, r)
		}
		return nil
	})
	return raws, err
}

// goFilesIn lists the .go files of one directory, sorted.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// buildIncluded evaluates a file's //go:build constraint for the host
// platform with no extra tags (so `//go:build race` files are excluded,
// matching a plain `go build`).
func buildIncluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH ||
					tag == "gc" || strings.HasPrefix(tag, "go1")
			})
		}
	}
	return true
}

func appendModImports(dst []string, f *ast.File, modPath string) []string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p == modPath || strings.HasPrefix(p, modPath+"/") {
			dst = append(dst, p)
		}
	}
	return dst
}

// topoSort orders packages so every module-internal import of a base
// package precedes its importer. Only base-file imports participate:
// test-only imports may legally form cycles through the package under
// test.
func topoSort(raws []*rawPkg, byPath map[string]*rawPkg) ([]*rawPkg, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []*rawPkg
	var visit func(r *rawPkg, chain []string) error
	visit = func(r *rawPkg, chain []string) error {
		switch state[r.path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle: %s", strings.Join(append(chain, r.path), " -> "))
		}
		state[r.path] = visiting
		deps := append([]string{}, r.imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if d, ok := byPath[dep]; ok && d != r {
				if err := visit(d, append(chain, r.path)); err != nil {
					return err
				}
			}
		}
		state[r.path] = done
		order = append(order, r)
		return nil
	}
	sorted := append([]*rawPkg{}, raws...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].path < sorted[j].path })
	for _, r := range sorted {
		if err := visit(r, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}
