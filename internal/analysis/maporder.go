package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

func init() {
	register(Rule{
		Name: "maporder",
		Doc: "flag `range` over a map whose body appends to an outer slice " +
			"(unless that slice is sorted later in the same function), " +
			"accumulates into an outer float, launches goroutines, or sends " +
			"on channels — map iteration order is nondeterministic",
		Run: runMapOrder,
	})
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sorted := collectSortCalls(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if !isMapRange(pass, rs) {
					return true
				}
				checkMapRangeBody(pass, rs, sorted)
				return true
			})
		}
	}
}

func isMapRange(pass *Pass, rs *ast.RangeStmt) bool {
	t := pass.Pkg.Info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// collectSortCalls records, per object, the positions where it is passed
// as the first argument to a sort/slices function — the second half of
// the collect-then-sort idiom, which makes an in-loop append legal.
func collectSortCalls(pass *Pass, body *ast.BlockStmt) map[types.Object][]token.Pos {
	out := map[types.Object][]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "sort", "slices":
			if root := rootIdent(call.Args[0]); root != nil {
				if obj := pass.Pkg.Info.ObjectOf(root); obj != nil {
					out[obj] = append(out[obj], call.Pos())
				}
			}
		}
		return true
	})
	return out
}

func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, sorted map[types.Object][]token.Pos) {
	info := pass.Pkg.Info
	declaredOutside := func(obj types.Object) bool {
		return obj != nil && !(rs.Pos() <= obj.Pos() && obj.Pos() < rs.End())
	}
	sortedLater := func(obj types.Object) bool {
		for _, p := range sorted[obj] {
			if p >= rs.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		// Nested map ranges get their own walk; descending here would
		// double-report their bodies.
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rs && isMapRange(pass, inner) {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			switch st.Tok {
			case token.ASSIGN, token.DEFINE:
				for i, rhs := range st.Rhs {
					if i >= len(st.Lhs) || !isAppendCall(info, rhs) {
						continue
					}
					root := rootIdent(st.Lhs[i])
					if root == nil {
						continue
					}
					obj := info.ObjectOf(root)
					if declaredOutside(obj) && !sortedLater(obj) {
						pass.Reportf(st.Pos(),
							"append to %s inside a map range makes element order depend on nondeterministic map iteration; range over sorted keys (or sort %s afterwards)",
							root.Name, root.Name)
					}
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(st.Lhs) != 1 {
					return true
				}
				t := info.TypeOf(st.Lhs[0])
				if t == nil {
					return true
				}
				basic, ok := t.Underlying().(*types.Basic)
				if !ok || basic.Info()&types.IsFloat == 0 {
					return true
				}
				root := rootIdent(st.Lhs[0])
				if root == nil {
					return true
				}
				if obj := info.ObjectOf(root); declaredOutside(obj) {
					pass.Reportf(st.Pos(),
						"float accumulation into %s inside a map range is order-dependent (floating-point addition is not associative); range over sorted keys",
						root.Name)
				}
			}
		case *ast.GoStmt:
			pass.Reportf(st.Pos(),
				"goroutine launched per map entry dispatches work in nondeterministic order; range over sorted keys")
		case *ast.SendStmt:
			pass.Reportf(st.Pos(),
				"channel send per map entry dispatches work in nondeterministic order; range over sorted keys")
		}
		return true
	})
}

func isAppendCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name() == "append"
	}
	return false
}
