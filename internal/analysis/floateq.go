package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

func init() {
	register(Rule{
		Name: "floateq",
		Doc: "forbid ==/!= between floating-point operands outside test " +
			"files; exact comparison against the constant zero and the " +
			"`x != x` NaN idiom stay legal — everything else needs an " +
			"epsilon or a suppression explaining why exactness is intended",
		Run: runFloatEq,
	})
}

func runFloatEq(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatOperand(info, be.X) && !isFloatOperand(info, be.Y) {
				return true
			}
			// Comparison against an exact zero constant (division guards,
			// "unset" sentinels) is well-defined in IEEE-754.
			if isZeroConst(info, be.X) || isZeroConst(info, be.Y) {
				return true
			}
			// `x != x` / `x == x` is the NaN test.
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true
			}
			pass.Reportf(be.Pos(),
				"floating-point %s comparison is exact and usually wrong outside golden tests; compare with an epsilon or restructure (e.g. a two-sided < ordering)",
				be.Op)
			return true
		})
	}
}

func isFloatOperand(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
