package analysis

// Worklist fixpoint engine over funcCFG. A pass instantiates dataflow
// with its lattice (join, equal) and transfer function, runs the
// fixpoint to get per-block input states, then replays blocks node by
// node to report findings with the exact state before each node.

import "go/ast"

// dataflow is one forward may/must analysis over a single function.
// States must be treated as immutable by transfer: return a fresh value
// (or the input unchanged) rather than mutating in place, because the
// same state is joined into multiple successors.
type dataflow[S any] struct {
	cfg      *funcCFG
	entry    S
	join     func(S, S) S
	equal    func(S, S) bool
	transfer func(ast.Node, S) S
}

// maxFixpointSweeps bounds the iteration count; every lattice used here
// has finite height, so the bound only guards against a future pass
// with a broken equal. Hitting it leaves a sound-enough partial result.
const maxFixpointSweeps = 64

// run computes the input state of every reachable block.
func (d *dataflow[S]) run() map[*cfgBlock]S {
	order := d.cfg.reachable()
	in := make(map[*cfgBlock]S, len(order))
	in[d.cfg.entry] = d.entry
	for sweep := 0; sweep < maxFixpointSweeps; sweep++ {
		changed := false
		for _, blk := range order {
			state, ok := in[blk]
			if !ok {
				continue // no predecessor has produced a state yet
			}
			out := d.flowThrough(blk, state)
			for _, succ := range blk.succs {
				prev, seen := in[succ]
				var next S
				if seen {
					next = d.join(prev, out)
				} else {
					next = out
				}
				if !seen || !d.equal(prev, next) {
					in[succ] = next
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return in
}

// flowThrough applies the transfer function across one block's nodes.
func (d *dataflow[S]) flowThrough(blk *cfgBlock, state S) S {
	for _, n := range blk.nodes {
		state = d.transfer(n, state)
	}
	return state
}

// replay re-walks every reachable block calling visit with the state in
// force immediately before each node. exit is called with the final
// state of the exit block (the join over all return/panic paths).
func (d *dataflow[S]) replay(in map[*cfgBlock]S, visit func(ast.Node, S), exit func(S)) {
	for _, blk := range d.cfg.reachable() {
		state, ok := in[blk]
		if !ok {
			continue
		}
		for _, n := range blk.nodes {
			if visit != nil {
				visit(n, state)
			}
			state = d.transfer(n, state)
		}
		if blk == d.cfg.exit && exit != nil {
			exit(state)
		}
	}
}
