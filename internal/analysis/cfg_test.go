package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses `func f() { <src> }` and returns its body.
func parseBody(t *testing.T, src string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg.go", "package p\nfunc f() {\n"+src+"\n}", 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, file.Decls[0].(*ast.FuncDecl).Body
}

// reachNodes runs a counting dataflow over the CFG: the state is the
// number of nodes seen on the longest path, and visit order is checked
// by replay. It exists to exercise run/replay plumbing end to end.
func countVisits(cfg *funcCFG) int {
	d := &dataflow[int]{
		cfg:   cfg,
		entry: 0,
		join: func(a, b int) int {
			if a > b {
				return a
			}
			return b
		},
		equal:    func(a, b int) bool { return a == b },
		transfer: func(_ ast.Node, s int) int { return s + 1 },
	}
	visits := 0
	d.replay(d.run(), func(ast.Node, int) { visits++ }, nil)
	return visits
}

func TestCFGStraightLine(t *testing.T) {
	_, body := parseBody(t, "x := 1\ny := x\n_ = y")
	cfg := buildCFG(body)
	if got := countVisits(cfg); got != 3 {
		t.Fatalf("straight-line visits = %d, want 3", got)
	}
	// Entry flows to exit.
	last := cfg.reachable()[len(cfg.reachable())-1]
	if last != cfg.exit {
		t.Fatalf("exit is not last in reverse post-order")
	}
}

func TestCFGBranchJoin(t *testing.T) {
	_, body := parseBody(t, `
x := 0
if x > 0 {
	x = 1
} else {
	x = 2
}
_ = x`)
	cfg := buildCFG(body)
	// The condition block must have two successors (then/else).
	var condBlk *cfgBlock
	for _, blk := range cfg.reachable() {
		for _, n := range blk.nodes {
			if e, ok := n.(ast.Expr); ok {
				if be, ok := e.(*ast.BinaryExpr); ok && be.Op == token.GTR {
					condBlk = blk
				}
			}
		}
	}
	if condBlk == nil {
		t.Fatal("condition expression not found in any block")
	}
	if len(condBlk.succs) != 2 {
		t.Fatalf("condition block has %d successors, want 2", len(condBlk.succs))
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	_, body := parseBody(t, `
for i := 0; i < 3; i++ {
	_ = i
}`)
	cfg := buildCFG(body)
	// Some reachable block must have a successor with a smaller or equal
	// index that is already on the path — i.e. a back edge.
	hasBack := false
	for _, blk := range cfg.reachable() {
		for _, s := range blk.succs {
			if s.index < blk.index && s != cfg.exit {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatal("for loop produced no back edge")
	}
}

func TestCFGRangeHeaderNode(t *testing.T) {
	_, body := parseBody(t, `
m := map[string]int{}
for k := range m {
	_ = k
}`)
	cfg := buildCFG(body)
	found := false
	for _, blk := range cfg.reachable() {
		for _, n := range blk.nodes {
			if rs, ok := n.(*ast.RangeStmt); ok {
				found = true
				// inspectHeader must see Key and X but not the body.
				var idents []string
				inspectHeader(rs, func(x ast.Node) bool {
					if id, ok := x.(*ast.Ident); ok {
						idents = append(idents, id.Name)
					}
					return true
				})
				joined := strings.Join(idents, ",")
				if !strings.Contains(joined, "k") || !strings.Contains(joined, "m") {
					t.Fatalf("inspectHeader(range) visited %q, want k and m", joined)
				}
			}
			if _, ok := n.(*ast.BlockStmt); ok {
				t.Fatal("a BlockStmt leaked into a CFG block")
			}
		}
	}
	if !found {
		t.Fatal("RangeStmt header node missing")
	}
}

func TestCFGEarlyReturnReachesExit(t *testing.T) {
	_, body := parseBody(t, `
x := 1
if x > 0 {
	return
}
_ = x`)
	cfg := buildCFG(body)
	// exit must have at least two predecessors: the early return and the
	// fallthrough end.
	preds := 0
	for _, blk := range cfg.reachable() {
		for _, s := range blk.succs {
			if s == cfg.exit {
				preds++
			}
		}
	}
	if preds < 2 {
		t.Fatalf("exit has %d predecessor edges, want >= 2", preds)
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	_, body := parseBody(t, `
x := 1
if x > 0 {
	panic("no")
}
_ = x`)
	cfg := buildCFG(body)
	var panicBlk *cfgBlock
	for _, blk := range cfg.reachable() {
		for _, n := range blk.nodes {
			if es, ok := n.(*ast.ExprStmt); ok && isTerminatingCall(es.X) {
				panicBlk = blk
			}
		}
	}
	if panicBlk == nil {
		t.Fatal("panic statement not found")
	}
	toExit := false
	for _, s := range panicBlk.succs {
		if s == cfg.exit {
			toExit = true
		}
	}
	if !toExit {
		t.Fatal("panic block has no edge to exit")
	}
}

func TestCFGBreakContinueLabels(t *testing.T) {
	_, body := parseBody(t, `
outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if j == 1 {
			continue outer
		}
		if j == 2 {
			break outer
		}
	}
}
_ = 1`)
	cfg := buildCFG(body)
	if got := countVisits(cfg); got == 0 {
		t.Fatal("no nodes visited")
	}
	// The trailing statement must remain reachable through break outer.
	foundTail := false
	for _, blk := range cfg.reachable() {
		for _, n := range blk.nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "_" && len(as.Rhs) == 1 {
					if bl, ok := as.Rhs[0].(*ast.BasicLit); ok && bl.Value == "1" {
						foundTail = true
					}
				}
			}
		}
	}
	if !foundTail {
		t.Fatal("statement after the labeled loop is unreachable")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	_, body := parseBody(t, `
x := 1
switch x {
case 1:
	x = 10
	fallthrough
case 2:
	x = 20
default:
	x = 30
}
_ = x`)
	cfg := buildCFG(body)
	// Find the blocks holding x = 10 and x = 20; the first must link to
	// the second (fallthrough), not to after.
	var b10, b20 *cfgBlock
	for _, blk := range cfg.reachable() {
		for _, n := range blk.nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			if bl, ok := as.Rhs[0].(*ast.BasicLit); ok {
				switch bl.Value {
				case "10":
					b10 = blk
				case "20":
					b20 = blk
				}
			}
		}
	}
	if b10 == nil || b20 == nil {
		t.Fatal("case bodies not found")
	}
	linked := false
	for _, s := range b10.succs {
		if s == b20 {
			linked = true
		}
	}
	if !linked {
		t.Fatal("fallthrough did not link case 1 to case 2")
	}
}

func TestCFGTypeSwitchHeader(t *testing.T) {
	_, body := parseBody(t, `
var v interface{} = 1
switch t := v.(type) {
case int:
	_ = t
default:
	_ = t
}`)
	cfg := buildCFG(body)
	found := false
	for _, blk := range cfg.reachable() {
		for _, n := range blk.nodes {
			if _, ok := n.(*ast.TypeSwitchStmt); ok {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("TypeSwitchStmt header node missing")
	}
}

func TestCFGDeferIsStraightLine(t *testing.T) {
	_, body := parseBody(t, `
defer func() { _ = recover() }()
x := 1
_ = x`)
	cfg := buildCFG(body)
	found := false
	for _, blk := range cfg.reachable() {
		for _, n := range blk.nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("DeferStmt missing from CFG")
	}
}

// TestCFGGotoBackward checks that a backward goto forms a cycle instead
// of losing the edge.
func TestCFGGotoBackward(t *testing.T) {
	_, body := parseBody(t, `
i := 0
loop:
	i++
	if i < 3 {
		goto loop
	}
_ = i`)
	cfg := buildCFG(body)
	hasCycleEdge := false
	for _, blk := range cfg.reachable() {
		for _, s := range blk.succs {
			if s.index < blk.index && s != cfg.exit {
				hasCycleEdge = true
			}
		}
	}
	if !hasCycleEdge {
		t.Fatal("backward goto produced no back edge")
	}
}

// TestFixpointLoopConverges runs a must-style analysis over a loop and
// checks it terminates with the conservative join.
func TestFixpointLoopConverges(t *testing.T) {
	_, body := parseBody(t, `
held := false
for i := 0; i < 3; i++ {
	held = true
}
_ = held`)
	cfg := buildCFG(body)
	// Must-analysis over "was the loop body executed": entry true only if
	// all paths executed it. After the loop the value must join to false
	// (zero-iteration path exists).
	type fact struct{ all, any bool }
	d := &dataflow[fact]{
		cfg:   cfg,
		entry: fact{all: true},
		join:  func(a, b fact) fact { return fact{all: a.all && b.all, any: a.any || b.any} },
		equal: func(a, b fact) bool { return a == b },
		transfer: func(n ast.Node, s fact) fact {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
				return fact{all: s.all, any: true}
			}
			return s
		},
	}
	in := d.run()
	exitState, ok := in[cfg.exit]
	if !ok {
		t.Fatal("exit state missing")
	}
	if !exitState.any {
		t.Fatal("may-half lost the loop body assignment")
	}
}
