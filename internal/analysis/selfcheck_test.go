package analysis

import (
	"path/filepath"
	"testing"
)

// TestRepoIsClean lints the repository's own source with every
// registered rule and demands zero findings, so CI catches new
// violations even when nobody runs the qpplint CLI. Fixing the finding
// is preferred; a `//qpplint:ignore <rule>` comment with a reason is the
// escape hatch.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	seenSelf := false
	for _, pkg := range pkgs {
		if pkg.Path == "qpp/internal/analysis" {
			seenSelf = true
		}
		for _, e := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, e)
		}
	}
	if !seenSelf {
		t.Error("module load missed qpp/internal/analysis itself")
	}
	for _, f := range CheckAll(pkgs) {
		t.Errorf("%s", f)
	}
}
