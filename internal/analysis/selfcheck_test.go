package analysis

import (
	"path/filepath"
	"sort"
	"testing"
)

// TestRepoIsClean lints the repository's own source with every
// registered rule and demands zero findings, so CI catches new
// violations even when nobody runs the qpplint CLI. Fixing the finding
// is preferred; a `//qpplint:ignore <rule>` comment with a reason is the
// escape hatch. Findings are grouped by rule so a noisy regression
// reads as a structured report rather than an interleaved dump.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	seenSelf := false
	for _, pkg := range pkgs {
		if pkg.Path == "qpp/internal/analysis" {
			seenSelf = true
		}
		for _, e := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, e)
		}
	}
	if !seenSelf {
		t.Error("module load missed qpp/internal/analysis itself")
	}

	findings := CheckAll(pkgs)
	if len(findings) == 0 {
		return
	}
	byRule := map[string][]Finding{}
	for _, f := range findings {
		byRule[f.Rule] = append(byRule[f.Rule], f)
	}
	rules := make([]string, 0, len(byRule))
	for r := range byRule {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	t.Errorf("repo lint failed: %d findings across %d rules", len(findings), len(rules))
	for _, r := range rules {
		t.Errorf("--- %s (%d) ---", r, len(byRule[r]))
		for _, f := range byRule[r] {
			t.Errorf("  %s", f)
		}
	}
}

// BenchmarkAnalyzeRepo times the full-module analysis — CFG and call
// graph construction plus every rule — over the repository itself. The
// load (parse + type-check) happens once outside the timer; the loop
// measures the cost a CI lint run pays after loading.
func BenchmarkAnalyzeRepo(b *testing.B) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		b.Fatalf("loading module: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if findings := CheckAll(pkgs); len(findings) != 0 {
			b.Fatalf("repo not clean: %d findings", len(findings))
		}
	}
}
