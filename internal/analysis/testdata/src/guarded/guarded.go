// Package guarded exercises the guardedfield rule.
package guarded

import "sync"

// Counter is a mutex-guarded map wrapper, the qpp.OnlineCache pattern.
type Counter struct {
	mu     sync.Mutex
	counts map[string]int // guarded by mu
}

// NewCounter constructs through a composite literal, which is not a
// field access and needs no lock.
func NewCounter() *Counter {
	return &Counter{counts: map[string]int{}}
}

// Inc locks correctly.
func (c *Counter) Inc(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts[k]++
}

// Peek reads the guarded field without the lock.
func (c *Counter) Peek(k string) int {
	return c.counts[k] // want `Counter\.counts is guarded by mu`
}

// PeekSuppressed documents a deliberately lock-free read.
func (c *Counter) PeekSuppressed(k string) int {
	//qpplint:ignore guardedfield fixture: approximate read, staleness is acceptable
	return c.counts[k]
}
