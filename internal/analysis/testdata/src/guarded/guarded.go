// Package guarded exercises the guardedfield rule.
package guarded

import "sync"

// Counter is a mutex-guarded map wrapper, the qpp.OnlineCache pattern.
type Counter struct {
	mu     sync.Mutex
	counts map[string]int // guarded by mu
}

// NewCounter constructs through a composite literal, which is not a
// field access and needs no lock.
func NewCounter() *Counter {
	return &Counter{counts: map[string]int{}}
}

// Inc locks correctly.
func (c *Counter) Inc(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts[k]++
}

// Peek reads the guarded field without the lock.
func (c *Counter) Peek(k string) int {
	return c.counts[k] // want `Counter\.counts is guarded by mu`
}

// PeekSuppressed documents a deliberately lock-free read.
func (c *Counter) PeekSuppressed(k string) int {
	//qpplint:ignore guardedfield fixture: approximate read, staleness is acceptable
	return c.counts[k]
}

// IncThenRead unlocks before the final read: flow-sensitively wrong
// even though the method does lock earlier in the body.
func (c *Counter) IncThenRead(k string) int {
	c.mu.Lock()
	c.counts[k]++
	c.mu.Unlock()
	return c.counts[k] // want `Counter\.counts is guarded by mu`
}

// OneBranch holds the lock on only one path to the access, so the
// must-held set is empty at the merge point.
func (c *Counter) OneBranch(k string, lock bool) {
	if lock {
		c.mu.Lock()
	}
	c.counts[k]++ // want `Counter\.counts is guarded by mu`
	if lock {
		c.mu.Unlock()
	}
}

// DeferUnlock keeps the lock held on every path out, including the
// early return: no finding.
func (c *Counter) DeferUnlock(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k == "" {
		return 0
	}
	return c.counts[k]
}

// Range creates its closure under the lock; the closure inherits the
// held set at its creation point and stays clean.
func (c *Counter) Range(f func(string, int)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	visit := func() {
		for k, v := range c.counts {
			f(k, v)
		}
	}
	visit()
}

// Snapshot builds the closure before taking any lock, so the guarded
// access inside it is unprotected.
func (c *Counter) Snapshot() map[string]int {
	out := map[string]int{}
	collect := func() {
		for k, v := range c.counts { // want `Counter\.counts is guarded by mu`
			out[k] = v
		}
	}
	collect()
	return out
}
