// Package suppress exercises the unusedignore check: a stale ignore
// comment (nothing to suppress) is itself a finding on full runs, while
// a live one stays silent.
package suppress

// Stale names a rule that never fires on the next line.
func Stale(x int) int {
	//qpplint:ignore floateq: stale, integers below never compare floats // want `suppresses nothing`
	return x + 1
}

// Live legitimately suppresses a float equality on the next line.
func Live(a, b float64) bool {
	//qpplint:ignore floateq: exact equality is the fixture's point
	return a == b
}
