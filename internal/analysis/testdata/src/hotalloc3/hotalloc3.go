// Package hotalloc3 exercises the batch-engine hot entry points. The
// escape-aware hotalloc checks treat OpenBatch/NextBatch/ReScanBatch
// exactly like Open/Next/ReScan: findings fire inside them and inside
// anything they reach over the static call graph, while the identical
// pattern in a cold method stays silent.
package hotalloc3

type batch struct {
	sel  []int32
	rows [][]float64
}

type sink struct{ vals []any }

func (s *sink) add(v any) { s.vals = append(s.vals, v) }

type rowStat struct {
	idx int32
	sum float64
}

type vecIter struct {
	b     batch
	stats sink
}

// NextBatch is a hot entry point: boxing a struct per selected row
// allocates once per row, not once per batch.
func (it *vecIter) NextBatch() (*batch, bool) {
	for _, w := range it.b.sel {
		st := rowStat{idx: w, sum: it.b.rows[w][0]}
		it.stats.add(st) // want `passing st boxes a .*rowStat into an interface per iteration of a hot loop`
	}
	return &it.b, true
}

// OpenBatch reaches claim over the call graph, so findings inside claim
// fire too.
func (it *vecIter) OpenBatch() error {
	it.claim()
	return nil
}

func (it *vecIter) claim() {
	for _, w := range it.b.sel {
		it.stats.add(w) // want `passing w boxes a int32 into an interface`
	}
}

// coldDescribe is not an entry point and nothing hot calls it: the same
// boxing pattern must not be reported.
func (it *vecIter) coldDescribe() {
	for _, w := range it.b.sel {
		it.stats.add(w)
	}
}

var _ = (*vecIter).coldDescribe
