// Package errdrop exercises the errdrop rule.
package errdrop

import (
	"errors"
	"strconv"
)

// Mk returns a value and an error.
func Mk(s string) (int, error) { return strconv.Atoi(s) }

// DropTuple discards the error component of a multi-value call.
func DropTuple(s string) int {
	n, _ := Mk(s) // want `error assigned to _`
	return n
}

// DropDirect assigns an error expression to blank.
func DropDirect() {
	_ = errors.New("boom") // want `error assigned to _`
}

// Handled propagates the error.
func Handled(s string) (int, error) { return Mk(s) }

// DropSuppressed documents why dropping is fine.
func DropSuppressed() int {
	//qpplint:ignore errdrop fixture: input is a constant, Atoi cannot fail
	n, _ := Mk("42")
	return n
}

// BlankNonError drops a non-error value, which is legal.
func BlankNonError() int {
	n, _ := 1, 2
	return n
}
