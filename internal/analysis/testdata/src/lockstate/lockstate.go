// Package lockstate exercises the held-lock-set rule: leaks on early
// return and panic paths, double-locks, unlocking unheld mutexes, and
// module-wide lock-order inversions.
package lockstate

import (
	"errors"
	"sync"
)

type store struct {
	mu sync.Mutex
	n  int
}

// LeakOnError forgets the unlock on the error path.
func (s *store) LeakOnError(fail bool) error {
	s.mu.Lock() // want `s\.mu\.Lock\(\) is not released on every path out of method LeakOnError`
	if fail {
		return errors.New("boom")
	}
	s.n++
	s.mu.Unlock()
	return nil
}

// PanicLeak loses the lock when the invariant check fires.
func (s *store) PanicLeak() {
	s.mu.Lock() // want `s\.mu\.Lock\(\) is not released on every path`
	if s.n < 0 {
		panic("corrupt store")
	}
	s.n++
	s.mu.Unlock()
}

// DeferOK is the sanctioned shape: the deferred unlock covers the early
// return, so nothing is reported.
func (s *store) DeferOK(fail bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fail {
		return errors.New("boom")
	}
	s.n++
	return nil
}

// BothBranches releases on every path without defer: still clean.
func (s *store) BothBranches(reset bool) {
	if reset {
		s.mu.Lock()
		s.n = 0
		s.mu.Unlock()
	} else {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}

// Double re-locks a mutex this goroutine already holds.
func (s *store) Double() {
	s.mu.Lock()
	s.mu.Lock() // want `s\.mu\.Lock\(\) while s\.mu may already be held`
	s.mu.Unlock()
}

// UnlockFirst releases a mutex that was never taken.
func (s *store) UnlockFirst() {
	s.mu.Unlock() // want `s\.mu\.Unlock\(\) but s\.mu is not locked on any path`
}

type rw struct {
	mu sync.RWMutex
	v  int
}

// Upgrade read-locks under its own write lock, which self-deadlocks on
// sync.RWMutex.
func (r *rw) Upgrade() {
	r.mu.Lock()
	r.mu.RLock() // want `r\.mu\.RLock\(\) while r\.mu may be write-locked`
	r.mu.Unlock()
}

var (
	muA sync.Mutex
	muB sync.Mutex
)

// lockAB and lockBA acquire the package mutexes in opposite orders:
// the classic AB/BA deadlock.
func lockAB() {
	muA.Lock()
	muB.Lock() // want `lock order inversion: .*lockstate\.muB acquired while holding .*lockstate\.muA`
	muB.Unlock()
	muA.Unlock()
}

func lockBA() {
	muB.Lock()
	muA.Lock() // want `lock order inversion: .*lockstate\.muA acquired while holding .*lockstate\.muB`
	muA.Unlock()
	muB.Unlock()
}

// acquireB takes muB on behalf of its callers; viaInversion therefore
// orders muA before muB through the call, inverting lockBA.
func acquireB() {
	muB.Lock()
	muB.Unlock()
}

func viaInversion() {
	muA.Lock()
	acquireB() // want `lock order inversion: .*lockstate\.muB acquired while holding .*lockstate\.muA \(through .*acquireB\)`
	muA.Unlock()
}

// Suppressed documents a deliberately unbalanced unlock (the matching
// Lock lives in a caller).
func (s *store) Suppressed() {
	//qpplint:ignore lockstate fixture: lock transfer, the caller holds it
	s.mu.Unlock()
}
