// Package helpers is a non-core utility package the interprocedural
// nondeterminism fixture imports: the primitives live here, outside
// the deterministic core, and only calls *from* the core are reported.
package helpers

import (
	"sort"
	"time"
)

// NowString reads the wall clock directly.
func NowString() string {
	return time.Now().Format(time.RFC3339)
}

// Deep reaches the clock through one more hop.
func Deep() string {
	return NowString()
}

// FirstKey returns whichever key map iteration yields first: its
// result depends on map iteration order.
func FirstKey(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

// SortedKeys is the sanctioned collect-then-sort idiom; its result is
// deterministic.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
