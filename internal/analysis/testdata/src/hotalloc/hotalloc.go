// Package hotalloc exercises the hotalloc rule. The harness loads it
// once under the executor import path (findings expected) and once
// under a neutral path (no findings).
package hotalloc

import (
	"fmt"
	"strings"
)

// GroupKeys is the per-row pattern the rule exists to kill: rendering a
// composite key with allocating string helpers inside the drain loop.
func GroupKeys(rows [][]string) map[string]int {
	groups := map[string]int{}
	for _, row := range rows {
		key := strings.Join(row, "\x00") // want `strings\.Join allocates its result per row`
		groups[key]++
	}
	return groups
}

// FormatPerRow formats a label per tuple.
func FormatPerRow(ids []int) []string {
	var out []string
	for _, id := range ids {
		out = append(out, fmt.Sprintf("row-%d", id)) // want `fmt\.Sprintf allocates per row`
	}
	return out
}

// ConcatPerRow builds keys with + and +=, both reallocating per row.
func ConcatPerRow(names []string) string {
	var acc string
	for _, n := range names {
		key := "k:" + n + ":v" // want `string concatenation inside an executor loop`
		acc += key             // want `string \+= inside an executor loop`
	}
	return acc
}

// BuilderPerRow spins up a strings.Builder per tuple.
func BuilderPerRow(names []string) []string {
	var out []string
	for _, n := range names {
		var b strings.Builder
		b.WriteString("name=")        // want `strings\.Builder use inside an executor loop`
		b.WriteString(n)              // want `strings\.Builder use inside an executor loop`
		out = append(out, b.String()) // want `strings\.Builder use inside an executor loop`
	}
	return out
}

// NestedLoops must be flagged exactly once per offending line even
// though the inner loop body is reachable from two loop walks.
func NestedLoops(batches [][]int) []string {
	var out []string
	for _, batch := range batches {
		for _, id := range batch {
			out = append(out, fmt.Sprint(id)) // want `fmt\.Sprint allocates per row`
		}
	}
	return out
}

// AppendKeyStyle is the sanctioned pattern: one reused byte buffer,
// alloc-free scanners, and map probes through string(buf).
func AppendKeyStyle(rows [][]string) map[string]int {
	groups := map[string]int{}
	var buf []byte
	for _, row := range rows {
		buf = buf[:0]
		for i, col := range row {
			if i > 0 {
				buf = append(buf, 0)
			}
			buf = append(buf, col...)
		}
		if strings.HasPrefix(string(buf), "skip") { // conversion for a scan, not a build
			continue
		}
		groups[string(buf)]++ // map index conversion does not allocate
	}
	return groups
}

// ColdPaths may format freely: error construction aborts the query, and
// code outside loops runs once per operator, not once per row.
func ColdPaths(rows [][]string) (string, error) {
	header := fmt.Sprintf("cols=%d", len(rows)) // outside a loop: legal
	for _, row := range rows {
		if len(row) == 0 {
			return "", fmt.Errorf("empty row after %s", header) // Errorf is cold by construction
		}
	}
	return header, nil
}

// FoldedConcat uses concatenation the compiler folds at build time.
func FoldedConcat(n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		out = append(out, "a"+"b") // constant-folded: legal
	}
	return out
}

// Suppressed documents a deliberate per-row format in a debug helper.
func Suppressed(ids []int) []string {
	var out []string
	for _, id := range ids {
		//qpplint:ignore hotalloc fixture: debug dump, never on the query path
		out = append(out, fmt.Sprintf("debug-%d", id))
	}
	return out
}
