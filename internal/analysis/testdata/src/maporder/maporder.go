// Package maporder exercises the maporder rule.
package maporder

import "sort"

// SumValues accumulates floats in map-iteration order.
func SumValues(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum`
	}
	return sum
}

// CollectValues appends map values and never sorts the result.
func CollectValues(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want `append to out`
	}
	return out
}

// SortedKeys is the canonical collect-then-sort idiom and is legal.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Dispatch fans work out per entry.
func Dispatch(m map[string]func(), done chan string) {
	for k, fn := range m {
		go fn()   // want `goroutine launched per map entry`
		done <- k // want `channel send per map entry`
	}
}

// PerEntry only touches loop-local state; integer totals are exact in
// any order.
func PerEntry(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// SumSuppressed documents an accumulation the author asserts is safe.
func SumSuppressed(m map[string]float64) float64 {
	var n float64
	for range m {
		n += 1 //qpplint:ignore maporder fixture: adding exact integers is order-independent
	}
	return n
}
