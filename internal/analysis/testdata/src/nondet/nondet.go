// Package nondet exercises the nondeterminism rule. The harness loads
// it once under a deterministic-core import path (findings expected) and
// once under a neutral path (no findings).
package nondet

import (
	"math/rand"
	"time"
)

// Timestamps reads the wall clock two ways.
func Timestamps() (time.Time, time.Duration) {
	start := time.Now()    // want `wall-clock call time\.Now`
	d := time.Since(start) // want `wall-clock call time\.Since`
	return start, d
}

// GlobalRand draws from the process-global source.
func GlobalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn`
}

// SeededRand is the sanctioned pattern: an explicit source built from a
// threaded seed.
func SeededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Durations uses only the pure, clock-free surface of package time.
func Durations() time.Duration {
	return 3 * time.Second
}

// Suppressed documents a deliberate wall-clock read.
func Suppressed() time.Time {
	//qpplint:ignore nondeterminism fixture: progress logging may read the wall clock
	return time.Now()
}
