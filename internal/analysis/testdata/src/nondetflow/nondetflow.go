// Package nondetflow exercises the interprocedural half of the
// nondeterminism rule. The harness loads it under a deterministic-core
// import path together with the nondetsrc helpers package, so the
// module call graph crosses a package boundary.
package nondetflow

import (
	"sort"

	"example.com/helpers"
)

// Stamp reaches the wall clock one call deep.
func Stamp() string {
	s := helpers.NowString() // want `call to .*NowString reaches time\.Now in the deterministic core \(call chain: .*NowString -> time\.Now\)`
	return s                 // want `return value depends on time\.Now via .*NowString -> time\.Now`
}

// DeepStamp reaches it two calls deep; the printed chain names every
// hop.
func DeepStamp() string {
	s := helpers.Deep() // want `reaches time\.Now .*Deep -> .*NowString -> time\.Now`
	return s            // want `return value depends on time\.Now`
}

// PickGroup returns a value tainted by map iteration order inside the
// helper. The helper performs no primitive call, so only the tainted
// return is reported.
func PickGroup(m map[string]int) string {
	k := helpers.FirstKey(m)
	return k // want `return value depends on map iteration order via .*FirstKey -> map iteration order`
}

// Sorted calls the helper that sorts before returning: clean.
func Sorted(m map[string]int) []string {
	return helpers.SortedKeys(m)
}

// CollectSorted is the local collect-then-sort idiom: the sort call
// sanitizes the collected slice.
func CollectSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Size depends only on the length of a tainted value, which is
// deterministic.
func Size(m map[string]int) int {
	k := helpers.FirstKey(m)
	return len(k)
}

// Overwritten kills the taint with a strong update before returning.
func Overwritten(m map[string]int) string {
	k := helpers.FirstKey(m)
	k = "fixed"
	return k
}

// Logged documents a deliberate wall-clock read.
func Logged() string {
	//qpplint:ignore nondeterminism fixture: progress logging may read the wall clock
	return helpers.NowString()
}
