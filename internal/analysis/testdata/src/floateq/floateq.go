// Package floateq exercises the floateq rule.
package floateq

// Same compares floats exactly.
func Same(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

// Differs compares floats exactly with !=.
func Differs(a, b float64) bool {
	return a != b // want `floating-point != comparison`
}

// ZeroGuard compares against the exact zero constant, which is legal
// (division guards, unset sentinels).
func ZeroGuard(x float64) bool { return x == 0 }

// IsNaN is the self-comparison idiom, which is legal.
func IsNaN(x float64) bool { return x != x }

// IntsAreFine compares integers.
func IntsAreFine(a, b int) bool { return a == b }

// Pinned documents an intentional exact comparison.
func Pinned(a float64) bool {
	return a == 1.5 //qpplint:ignore floateq fixture: exact binary constant
}
