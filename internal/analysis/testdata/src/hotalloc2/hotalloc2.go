// Package hotalloc2 exercises the escape-aware hotalloc checks, which
// only fire in functions reachable from a hot entry point (here the
// Next method). The same patterns in the cold* functions stay silent.
package hotalloc2

type iter struct {
	rows [][]string
	pos  int
	keys []string
}

// Next is the hot entry point; everything it calls is per-row.
func (it *iter) Next() bool {
	if it.pos >= len(it.rows) {
		return false
	}
	row := it.rows[it.pos]
	it.pos++
	it.closures(row)
	it.boxing(row)
	it.growth(row)
	it.preallocated(row)
	it.reused(row)
	it.suppressed(row)
	return true
}

// closures allocates a capturing closure every iteration.
func (it *iter) closures(row []string) {
	for _, cell := range row {
		emit := func() { it.keys = append(it.keys, cell) } // want `func literal captures cell, it inside a hot loop`
		emit()
	}
	for range row {
		// Capturing nothing costs nothing: the compiler hoists it.
		check := func(s string) bool { return s == "" }
		_ = check("")
	}
}

func sink(v interface{}) { _ = v }

// boxing converts a non-pointer value to interface{} per iteration.
func (it *iter) boxing(row []string) {
	for i := range row {
		sink(i) // want `passing i boxes a int into an interface`
	}
	for range row {
		sink("label") // constants box into static data: no finding
		sink(it)      // pointers store inline in the interface word
	}
}

// growth appends into a slice declared outside the loop with no
// capacity hint and no reuse.
func (it *iter) growth(row []string) {
	var out []string
	for _, c := range row {
		out = append(out, c) // want `append grows out per iteration of a hot loop`
	}
	it.keys = out
}

// preallocated sizes the destination up front: clean.
func (it *iter) preallocated(row []string) {
	out := make([]string, 0, len(row))
	for _, c := range row {
		out = append(out, c)
	}
	it.keys = out
}

// reused reslices an existing backing array to zero length: clean.
func (it *iter) reused(row []string) {
	out := it.keys[:0]
	for _, c := range row {
		out = append(out, c)
	}
	it.keys = out
}

// suppressed documents a bounded append.
func (it *iter) suppressed(row []string) {
	var out []string
	for _, c := range row {
		//qpplint:ignore hotalloc fixture: bounded by column count, not row count
		out = append(out, c)
	}
	it.keys = out
}

// coldGrowth has the same shape as growth but is unreachable from any
// hot entry point, so the escape checks skip it.
func (it *iter) coldGrowth(row []string) {
	var out []string
	for _, c := range row {
		out = append(out, c)
	}
	it.keys = out
}
