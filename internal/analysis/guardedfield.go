package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

func init() {
	register(Rule{
		Name: "guardedfield",
		Doc: "struct fields annotated `// guarded by <mu>` may only be " +
			"accessed in functions that lock <mu> on the same receiver " +
			"expression (flow-insensitive: the Lock/RLock call must appear " +
			"somewhere in the function body)",
		Run: runGuardedField,
	})
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// runGuardedField generalizes the qpp.OnlineCache pattern: a mutex-
// protected field is annotated at its declaration, and every selector
// access `x.field` must live in a function that also calls `x.<mu>.Lock`
// or `x.<mu>.RLock`. Construction through composite literals is not a
// selector access, so constructors stay clean without annotations.
func runGuardedField(pass *Pass) {
	info := pass.Pkg.Info

	// Pass 1: collect annotated fields (field object -> mutex name).
	guarded := map[types.Object]string{}
	structName := map[types.Object]string{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := fieldGuardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						guarded[obj] = mu
						structName[obj] = ts.Name.Name
					}
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return
	}

	// Pass 2: every selector access to a guarded field must share a
	// function with a lock of the same mutex on the same base expression.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			locked := lockedExprs(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection := info.Selections[sel]
				if selection == nil || selection.Kind() != types.FieldVal {
					return true
				}
				mu, ok := guarded[selection.Obj()]
				if !ok {
					return true
				}
				base := types.ExprString(sel.X)
				if locked[base+"."+mu] || locked[mu] {
					return true
				}
				pass.Reportf(sel.Pos(),
					"%s.%s is guarded by %s but %s accesses it without locking %s.%s",
					structName[selection.Obj()], sel.Sel.Name, mu, funcName(fd), base, mu)
				return true
			})
		}
	}
}

// fieldGuardAnnotation extracts the mutex name from a `guarded by <mu>`
// doc or trailing comment on a struct field.
func fieldGuardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockedExprs collects the rendered receiver expressions of Lock/RLock
// calls in a function body: `c.mu.Lock()` yields "c.mu".
func lockedExprs(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if name := sel.Sel.Name; name == "Lock" || name == "RLock" {
			out[types.ExprString(sel.X)] = true
		}
		return true
	})
	return out
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		return "method " + fd.Name.Name
	}
	return "function " + fd.Name.Name
}
