package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

func init() {
	register(Rule{
		Name: "guardedfield",
		Doc: "struct fields annotated `// guarded by <mu>` may only be " +
			"accessed at program points where <mu> is held on every path " +
			"(flow-sensitive over the CFG: locking later in the function, " +
			"after an Unlock, or on only one branch does not count)",
		Run: runGuardedField,
	})
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// runGuardedField generalizes the qpp.OnlineCache pattern: a mutex-
// protected field is annotated at its declaration, and every selector
// access `x.field` must sit at a point where the held-lock-set dataflow
// proves `x.<mu>` (or a bare package-level `<mu>`) is held on every
// path. Construction through composite literals is not a selector
// access, so constructors stay clean without annotations.
func runGuardedField(pass *Pass) {
	info := pass.Pkg.Info

	// Pass 1: collect annotated fields (field object -> mutex name).
	guarded := map[types.Object]string{}
	structName := map[types.Object]string{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := fieldGuardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						guarded[obj] = mu
						structName[obj] = ts.Name.Name
					}
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return
	}

	// Pass 2: flow-sensitive check of every selector access against the
	// held-lock set in force at that point.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedInBody(pass, guarded, structName, fd, fd.Body, nil)
		}
	}
}

// checkGuardedInBody runs the lock dataflow over one function body and
// reports guarded accesses without the mutex must-held. Function
// literals inherit the must-held set at their creation point (the
// closest sound approximation without tracking where the closure runs)
// and are checked recursively.
func checkGuardedInBody(pass *Pass, guarded map[types.Object]string, structName map[types.Object]string, fd *ast.FuncDecl, body *ast.BlockStmt, outer *lockState) {
	d, states := runLockFlow(pass.Mod, pass.Pkg, body)
	if outer != nil {
		entry := outer.clone()
		// Deferred unlocks belong to the enclosing function, not the
		// closure's own exit.
		entry.deferred = map[string]bool{}
		d.entry = entry
		states = d.run()
	}
	d.replay(states, func(n ast.Node, s lockState) {
		inspectHeader(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				checkGuardedInBody(pass, guarded, structName, fd, x.Body, &s)
				return false
			case *ast.SelectorExpr:
				checkGuardedAccess(pass, guarded, structName, fd, x, s)
			}
			return true
		})
	}, nil)
}

func checkGuardedAccess(pass *Pass, guarded map[types.Object]string, structName map[types.Object]string, fd *ast.FuncDecl, sel *ast.SelectorExpr, s lockState) {
	selection := pass.Pkg.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	mu, ok := guarded[selection.Obj()]
	if !ok {
		return
	}
	base := types.ExprString(sel.X)
	if s.must[base+"."+mu] != 0 || s.must[mu] != 0 {
		return
	}
	pass.Reportf(sel.Pos(),
		"%s.%s is guarded by %s but %s accesses it without holding %s.%s at this point",
		structName[selection.Obj()], sel.Sel.Name, mu, funcName(fd), base, mu)
}

// fieldGuardAnnotation extracts the mutex name from a `guarded by <mu>`
// doc or trailing comment on a struct field.
func fieldGuardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}
