package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotPathPackages lists the packages whose loops are presumed per-row
// or per-request: the executor iterates them once per tuple and the
// serving layer once per concurrent request, so any string-building
// allocation inside a loop multiplies by table cardinality (executor)
// or request rate (server). The sanctioned patterns are rendering into
// a reused []byte buffer (types.Value.AppendKey), probing maps via
// m[string(buf)], and — in the serving layer — precomputing names and
// labels at construction time instead of per scrape or per request.
var HotPathPackages = []string{
	"qpp/internal/exec",
	"qpp/internal/serve",
	"qpp/internal/sketch",
	"qpp/internal/plancache",
	"qpp/cmd/qppserve",
}

// fmtAllocDeny is the allocating render surface of package fmt. Errorf
// stays legal: error paths abort the query, so they are cold by
// construction.
var fmtAllocDeny = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
}

// stringsAllocDeny lists strings functions that always allocate their
// result. The pure scanners (Index, HasPrefix, EqualFold, ...) are
// allocation-free and stay legal.
var stringsAllocDeny = map[string]bool{
	"Join":       true,
	"Repeat":     true,
	"Replace":    true,
	"ReplaceAll": true,
	"ToUpper":    true,
	"ToLower":    true,
}

func init() {
	register(Rule{
		Name: "hotalloc",
		Doc: "flag per-row allocation patterns inside loops of the executor " +
			"hot-path packages — fmt.Sprintf/Sprint/Sprintln, allocating " +
			"strings helpers (Join, Repeat, ...), strings.Builder writes, and " +
			"string concatenation; render into a reused []byte buffer " +
			"(types.Value.AppendKey) and probe maps with m[string(buf)] instead. " +
			"In functions reachable from a hot entry point (exec Next/Open/ReScan " +
			"and their batch-engine NextBatch/OpenBatch/ReScanBatch equivalents, " +
			"serve ServeHTTP/handle*/wrap*) it additionally reports escape-shaped " +
			"allocations: capturing closures built per iteration, non-pointer " +
			"values boxed into interface arguments, and append-growth of slices " +
			"declared outside the loop without preallocation or reuse",
		Run: runHotAlloc,
	})
}

func isHotPathPackage(path string) bool {
	for _, p := range HotPathPackages {
		if path == p {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) {
	// Test files are exempt: benchmarks and test helpers legitimately
	// format strings per iteration.
	if !isHotPathPackage(pass.Pkg.Path) {
		return
	}
	reach := pass.Mod.hotReachable()
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch l := n.(type) {
			case *ast.ForStmt:
				body = l.Body
			case *ast.RangeStmt:
				body = l.Body
			default:
				return true
			}
			checkHotLoopBody(pass, body)
			// The body walk above already covered nested loops; descending
			// here would double-report them.
			return false
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok || !reach[obj.FullName()] {
				continue
			}
			checkHotEscapes(pass, fd)
		}
	}
}

// hotEntryPoint reports whether a declaration is one of the per-row /
// per-request roots the escape checks measure reachability from.
func hotEntryPoint(pkgPath string, fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	switch pkgPath {
	case "qpp/internal/exec":
		// Operator methods run once per tuple (Next) or per restart
		// (Open, ReScan) of a potentially re-scanned inner input. The
		// batch engine's equivalents run once per window of ~1k rows —
		// still hot: a per-batch allocation is a per-1k-rows allocation,
		// and their loop bodies run per row.
		return fd.Recv != nil && (name == "Next" || name == "Open" || name == "ReScan" ||
			name == "NextBatch" || name == "OpenBatch" || name == "ReScanBatch")
	case "qpp/internal/serve", "qpp/cmd/qppserve":
		return name == "ServeHTTP" || strings.HasPrefix(name, "handle") || strings.HasPrefix(name, "wrap")
	case "qpp/internal/plancache":
		// Plan (and everything it reaches: canonicalization, literal
		// rebinding, candidate replay, selector scoring) runs once per
		// served request; Canonicalize additionally runs on every lookup.
		return name == "Plan" || name == "Canonicalize"
	}
	return false
}

// hotReachable memoizes the set of module functions reachable from a
// hot entry point over the static call graph.
func (m *Module) hotReachable() map[string]bool {
	if m.hotOK {
		return m.hotReach
	}
	reach := map[string]bool{}
	var queue []string
	for _, name := range m.funcNames {
		info := m.funcs[name]
		if isHotPathPackage(info.Pkg.Path) && hotEntryPoint(info.Pkg.Path, info.Decl) {
			reach[name] = true
			queue = append(queue, name)
		}
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		for _, c := range m.calleesOf(m.funcs[name]) {
			if !reach[c.Name] {
				reach[c.Name] = true
				queue = append(queue, c.Name)
			}
		}
	}
	m.hotReach = reach
	m.hotOK = true
	return reach
}

// hotLoop is one for/range loop inside a hot-reachable function.
type hotLoop struct {
	node ast.Node
	body *ast.BlockStmt
}

func collectLoops(body *ast.BlockStmt) []hotLoop {
	var loops []hotLoop
	ast.Inspect(body, func(n ast.Node) bool {
		switch l := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, hotLoop{node: n, body: l.Body})
		case *ast.RangeStmt:
			loops = append(loops, hotLoop{node: n, body: l.Body})
		case *ast.FuncLit:
			// A loop inside a closure belongs to the closure's own walk
			// (and the closure itself is what allocates per iteration).
			return false
		}
		return true
	})
	return loops
}

// innermostLoop returns the smallest collected loop whose body contains
// pos, or nil when pos is outside every loop.
func innermostLoop(loops []hotLoop, pos token.Pos) *hotLoop {
	var best *hotLoop
	for i := range loops {
		l := &loops[i]
		if pos < l.body.Pos() || pos > l.body.End() {
			continue
		}
		if best == nil || l.body.Pos() > best.body.Pos() {
			best = l
		}
	}
	return best
}

// checkHotEscapes reports the escape-shaped per-iteration allocations
// inside one hot-reachable function: capturing closures, interface
// boxing at call boundaries, and append-growth of loop-external slices.
func checkHotEscapes(pass *Pass, fd *ast.FuncDecl) {
	loops := collectLoops(fd.Body)
	if len(loops) == 0 {
		return
	}
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if innermostLoop(loops, x.Pos()) == nil {
				return true
			}
			captured := closureCaptures(info, fd, x)
			if len(captured) == 0 {
				return true
			}
			pass.Reportf(x.Pos(),
				"func literal captures %s inside a hot loop; the closure allocates per iteration — hoist it out of the loop or pass values as parameters",
				strings.Join(captured, ", "))
			// One finding per outermost capturing closure: its nested
			// literals are part of the same per-iteration allocation.
			return false
		case *ast.CallExpr:
			if innermostLoop(loops, x.Pos()) != nil {
				checkBoxingCall(pass, x)
			}
		case *ast.AssignStmt:
			if loop := innermostLoop(loops, x.Pos()); loop != nil {
				checkAppendGrowth(pass, fd, loop, x)
			}
		}
		return true
	})
}

// closureCaptures lists the function-local variables a literal closes
// over (declared in the enclosing function before the literal), sorted.
func closureCaptures(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) []string {
	seen := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() < lit.Pos() {
			seen[id.Name] = true
		}
		return true
	})
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// checkBoxingCall reports non-pointer values converted to interface
// parameters inside a hot loop. Error-path formatting (fmt.Errorf,
// package errors, panic) is exempt: those abort the query, so they are
// cold by construction; panic and other builtins carry no *types.
// Signature and skip naturally.
func checkBoxingCall(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	if tv, ok := info.Types[call.Fun]; !ok || tv.IsType() {
		return // conversion, not a call
	}
	if isColdCall(info, call) {
		return
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // xs... passes the slice itself, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || isPointerShaped(at) {
			continue
		}
		if tv, ok := info.Types[arg]; ok && (tv.Value != nil || tv.IsNil()) {
			continue // constants and nil box into static data, not the heap
		}
		pass.Reportf(arg.Pos(),
			"passing %s boxes a %s into an interface per iteration of a hot loop; use a concrete-typed parameter or hoist the value out of the loop",
			types.ExprString(arg), at.String())
	}
}

// isColdCall recognizes error-path calls exempt from boxing checks.
func isColdCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	switch pkgName.Imported().Path() {
	case "errors":
		return true
	case "fmt":
		return sel.Sel.Name == "Errorf"
	}
	return false
}

// isPointerShaped reports whether converting t to an interface stores
// the value inline (one word) instead of heap-allocating a box.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// checkAppendGrowth reports `x = append(x, ...)` growing a slice that
// was declared outside the loop without a capacity hint or `x = x[:0]`
// reuse — the shape that reallocates log(n) times per call instead of
// once at construction.
func checkAppendGrowth(pass *Pass, fd *ast.FuncDecl, loop *hotLoop, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
		return
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	info := pass.Pkg.Info
	obj, ok := info.ObjectOf(lhs).(*types.Var)
	if !ok {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return
	}
	if _, isBuiltin := info.Uses[fun].(*types.Builtin); !isBuiltin {
		return
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || info.ObjectOf(first) != obj {
		return
	}
	// Only slices declared outside the loop accumulate across
	// iterations; a per-iteration slice is a different (cheaper) sin.
	if obj.Pos() >= loop.node.Pos() && obj.Pos() <= loop.node.End() {
		return
	}
	if hasPreallocEvidence(info, fd, obj) {
		return
	}
	pass.Reportf(as.Pos(),
		"append grows %s per iteration of a hot loop without preallocation; size it with make(T, 0, n) outside the loop or reuse it with %s = %s[:0]",
		lhs.Name, lhs.Name, lhs.Name)
}

// hasPreallocEvidence reports whether the function deliberately manages
// obj's capacity: a `make(T, n, c)` with an explicit cap, a reslice to
// empty (`x = x[:0]`, `buf := s.keyBuf[:0]` — buffer reuse), or a
// three-index `xs[:0:0]` (copy-on-append filtering). Any of these marks
// the growth as intentional.
func hasPreallocEvidence(info *types.Info, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.ObjectOf(id) == obj
	}
	sized := func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			fun, ok := ast.Unparen(x.Fun).(*ast.Ident)
			if !ok || fun.Name != "make" || len(x.Args) != 3 {
				return false
			}
			_, isBuiltin := info.Uses[fun].(*types.Builtin)
			return isBuiltin
		case *ast.SliceExpr:
			lit, ok := x.High.(*ast.BasicLit)
			return ok && lit.Value == "0" && x.Low == nil
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i < len(x.Rhs) && isObj(lhs) && sized(x.Rhs[i]) {
					found = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if i < len(x.Values) && info.ObjectOf(name) == obj && sized(x.Values[i]) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// checkHotLoopBody walks one outermost loop body (nested loops included)
// and reports every allocation pattern the executor must not pay per
// row.
func checkHotLoopBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	// A string a+b+c chain parses as ((a+b)+c); reporting every nested
	// BinaryExpr would triple-flag one expression, so inner adds of an
	// already-reported chain are skipped.
	reportedChain := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, x)
		case *ast.BinaryExpr:
			if x.Op != token.ADD || reportedChain[x] || !isStringType(info.TypeOf(x)) {
				return true
			}
			// Constant-folded concatenations ("a" + "b") cost nothing at
			// run time.
			if tv, ok := info.Types[x]; ok && tv.Value != nil {
				return true
			}
			pass.Reportf(x.Pos(),
				"string concatenation inside an executor loop allocates per row; append into a reused []byte buffer (Value.AppendKey) instead")
			markNestedAdds(x, reportedChain)
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(info.TypeOf(x.Lhs[0])) {
				pass.Reportf(x.Pos(),
					"string += inside an executor loop reallocates the accumulator per row; append into a reused []byte buffer instead")
			}
		}
		return true
	})
}

func checkHotCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	info := pass.Pkg.Info
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := info.Uses[id].(*types.PkgName); ok {
			name := sel.Sel.Name
			switch pkgName.Imported().Path() {
			case "fmt":
				if fmtAllocDeny[name] {
					pass.Reportf(call.Pos(),
						"fmt.%s allocates per row inside an executor loop; render into a reused []byte buffer (Value.AppendKey) instead", name)
				}
			case "strings":
				if stringsAllocDeny[name] {
					pass.Reportf(call.Pos(),
						"strings.%s allocates its result per row inside an executor loop; render into a reused []byte buffer instead", name)
				}
			}
			return
		}
	}
	if isStringsBuilderRecv(info, sel.X) {
		pass.Reportf(call.Pos(),
			"strings.Builder use inside an executor loop allocates per row; reuse a []byte buffer across rows instead")
	}
}

// isStringsBuilderRecv reports whether the expression's type is
// strings.Builder (or a pointer to it).
func isStringsBuilderRecv(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "strings" && obj.Name() == "Builder"
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// markNestedAdds marks every + under e as part of an already-reported
// concatenation chain.
func markNestedAdds(e ast.Expr, seen map[ast.Expr]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.ADD {
			seen[b] = true
		}
		return true
	})
}
