package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathPackages lists the packages whose loops are presumed per-row
// or per-request: the executor iterates them once per tuple and the
// serving layer once per concurrent request, so any string-building
// allocation inside a loop multiplies by table cardinality (executor)
// or request rate (server). The sanctioned patterns are rendering into
// a reused []byte buffer (types.Value.AppendKey), probing maps via
// m[string(buf)], and — in the serving layer — precomputing names and
// labels at construction time instead of per scrape or per request.
var HotPathPackages = []string{
	"qpp/internal/exec",
	"qpp/internal/serve",
	"qpp/cmd/qppserve",
}

// fmtAllocDeny is the allocating render surface of package fmt. Errorf
// stays legal: error paths abort the query, so they are cold by
// construction.
var fmtAllocDeny = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
}

// stringsAllocDeny lists strings functions that always allocate their
// result. The pure scanners (Index, HasPrefix, EqualFold, ...) are
// allocation-free and stay legal.
var stringsAllocDeny = map[string]bool{
	"Join":       true,
	"Repeat":     true,
	"Replace":    true,
	"ReplaceAll": true,
	"ToUpper":    true,
	"ToLower":    true,
}

func init() {
	register(Rule{
		Name: "hotalloc",
		Doc: "flag per-row allocation patterns inside loops of the executor " +
			"hot-path packages — fmt.Sprintf/Sprint/Sprintln, allocating " +
			"strings helpers (Join, Repeat, ...), strings.Builder writes, and " +
			"string concatenation; render into a reused []byte buffer " +
			"(types.Value.AppendKey) and probe maps with m[string(buf)] instead",
		Run: runHotAlloc,
	})
}

func isHotPathPackage(path string) bool {
	for _, p := range HotPathPackages {
		if path == p {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) {
	// Test files are exempt: benchmarks and test helpers legitimately
	// format strings per iteration.
	if !isHotPathPackage(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch l := n.(type) {
			case *ast.ForStmt:
				body = l.Body
			case *ast.RangeStmt:
				body = l.Body
			default:
				return true
			}
			checkHotLoopBody(pass, body)
			// The body walk above already covered nested loops; descending
			// here would double-report them.
			return false
		})
	}
}

// checkHotLoopBody walks one outermost loop body (nested loops included)
// and reports every allocation pattern the executor must not pay per
// row.
func checkHotLoopBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	// A string a+b+c chain parses as ((a+b)+c); reporting every nested
	// BinaryExpr would triple-flag one expression, so inner adds of an
	// already-reported chain are skipped.
	reportedChain := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, x)
		case *ast.BinaryExpr:
			if x.Op != token.ADD || reportedChain[x] || !isStringType(info.TypeOf(x)) {
				return true
			}
			// Constant-folded concatenations ("a" + "b") cost nothing at
			// run time.
			if tv, ok := info.Types[x]; ok && tv.Value != nil {
				return true
			}
			pass.Reportf(x.Pos(),
				"string concatenation inside an executor loop allocates per row; append into a reused []byte buffer (Value.AppendKey) instead")
			markNestedAdds(x, reportedChain)
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(info.TypeOf(x.Lhs[0])) {
				pass.Reportf(x.Pos(),
					"string += inside an executor loop reallocates the accumulator per row; append into a reused []byte buffer instead")
			}
		}
		return true
	})
}

func checkHotCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	info := pass.Pkg.Info
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := info.Uses[id].(*types.PkgName); ok {
			name := sel.Sel.Name
			switch pkgName.Imported().Path() {
			case "fmt":
				if fmtAllocDeny[name] {
					pass.Reportf(call.Pos(),
						"fmt.%s allocates per row inside an executor loop; render into a reused []byte buffer (Value.AppendKey) instead", name)
				}
			case "strings":
				if stringsAllocDeny[name] {
					pass.Reportf(call.Pos(),
						"strings.%s allocates its result per row inside an executor loop; render into a reused []byte buffer instead", name)
				}
			}
			return
		}
	}
	if isStringsBuilderRecv(info, sel.X) {
		pass.Reportf(call.Pos(),
			"strings.Builder use inside an executor loop allocates per row; reuse a []byte buffer across rows instead")
	}
}

// isStringsBuilderRecv reports whether the expression's type is
// strings.Builder (or a pointer to it).
func isStringsBuilderRecv(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "strings" && obj.Name() == "Builder"
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// markNestedAdds marks every + under e as part of an already-reported
// concatenation chain.
func markNestedAdds(e ast.Expr, seen map[ast.Expr]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.ADD {
			seen[b] = true
		}
		return true
	})
}
