package sketch

import (
	"math"
	"sort"
)

// QuantileCap is the per-level compaction buffer size. A level holding
// QuantileCap items of weight 2^l compacts into QuantileCap/2 items of
// weight 2^(l+1); each compaction perturbs any rank by at most half the
// compacted weight, so over L = log2(N/cap) levels the deterministic
// worst-case rank error is L·N/(2·cap). At cap 2048 and N = 10^6 that
// is ≈ 0.22%·N — comfortably inside the 1%-of-N budget a 100-bin
// equi-depth histogram needs (QuantileBinsMax).
const QuantileCap = 2048

// QuantileBinsMax is the largest bin count the sketch's rank-error
// budget covers: boundaries for bins <= this are within N/bins ranks.
const QuantileBinsMax = 100

// Quantile is a deterministic mergeable streaming quantile sketch in
// the Manku-Rajagopalan-Lindsay compaction family. Level l holds items
// of weight 2^l, sorted ascending; a full level compacts upward by
// keeping alternating items (the parity alternates per compaction via a
// counter, cancelling the fixed-offset bias). Exact min/max are tracked
// on the side so histogram end bounds never drift.
//
// Memory is O(cap · log(N/cap)) regardless of stream length. Merging
// concatenates levels and re-compacts; because levels are value
// multisets and compaction sorts first, merge is commutative down to
// the serialized bytes.
type Quantile struct {
	levels  [][]float64
	compact []uint64 // per-level compaction counter (parity source)
	n       uint64   // total observations (== total weight)
	min     float64
	max     float64
}

// NewQuantile returns an empty quantile sketch.
func NewQuantile() *Quantile {
	return &Quantile{min: math.Inf(1), max: math.Inf(-1)}
}

// Add observes one value. NaN is ignored: it has no rank, and admitting
// it would make sorted order (and therefore the canonical encoding)
// ill-defined.
func (q *Quantile) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < q.min {
		q.min = v
	}
	if v > q.max {
		q.max = v
	}
	q.n++
	if len(q.levels) == 0 {
		q.levels = append(q.levels, make([]float64, 0, QuantileCap))
		q.compact = append(q.compact, 0)
	}
	q.levels[0] = append(q.levels[0], v)
	if len(q.levels[0]) >= QuantileCap {
		q.compactFrom(0)
	}
}

// N returns the number of observations.
func (q *Quantile) N() uint64 { return q.n }

// Min and Max are the exact observed extremes (undefined before any Add).
func (q *Quantile) Min() float64 { return q.min }

// Max is the exact observed maximum.
func (q *Quantile) Max() float64 { return q.max }

// compactFrom halves every full level starting at l, promoting pairs
// upward. Levels are sorted before pairing, so the state after
// compaction depends only on the level's value multiset and the
// compaction counter — the property the commutative merge relies on.
func (q *Quantile) compactFrom(l int) {
	for ; l < len(q.levels); l++ {
		if len(q.levels[l]) < QuantileCap {
			return
		}
		lv := q.levels[l]
		sort.Float64s(lv)
		if l+1 == len(q.levels) {
			q.levels = append(q.levels, make([]float64, 0, QuantileCap))
			q.compact = append(q.compact, 0)
		}
		// Alternate which member of each pair survives; a fixed offset
		// would bias every boundary the same direction.
		offset := int(q.compact[l] & 1)
		q.compact[l]++
		pairs := len(lv) / 2
		for i := 0; i < pairs; i++ {
			q.levels[l+1] = append(q.levels[l+1], lv[2*i+offset])
		}
		// An odd leftover keeps its weight at this level.
		if len(lv)%2 == 1 {
			q.levels[l] = append(lv[:0], lv[len(lv)-1])
		} else {
			q.levels[l] = lv[:0]
		}
	}
}

// Merge folds other into q. Commutative: merge(a,b) and merge(b,a)
// marshal identically.
func (q *Quantile) Merge(other *Quantile) {
	if other.n == 0 {
		return
	}
	if other.min < q.min {
		q.min = other.min
	}
	if other.max > q.max {
		q.max = other.max
	}
	q.n += other.n
	for l := 0; l < len(other.levels); l++ {
		for len(q.levels) <= l {
			q.levels = append(q.levels, make([]float64, 0, QuantileCap))
			q.compact = append(q.compact, 0)
		}
		q.levels[l] = append(q.levels[l], other.levels[l]...)
		q.compact[l] += other.compact[l]
	}
	// Sort every level before re-compacting so the result depends only
	// on the combined multisets, not on which operand came first.
	for l := range q.levels {
		sort.Float64s(q.levels[l])
	}
	for l := 0; l < len(q.levels); l++ {
		for len(q.levels[l]) >= QuantileCap {
			q.compactFrom(l)
		}
	}
}

// weighted is the flattened (value, weight) view used by rank queries.
type weighted struct {
	v float64
	w uint64
}

func (q *Quantile) flatten() []weighted {
	total := 0
	for _, lv := range q.levels {
		total += len(lv)
	}
	out := make([]weighted, 0, total)
	for l, lv := range q.levels {
		w := uint64(1) << uint(l)
		for _, v := range lv {
			out = append(out, weighted{v: v, w: w})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].v < out[j].v })
	return out
}

// Bounds returns bins+1 ascending equi-depth boundaries: boundary i
// approximates the value at rank i·N/bins. The first and last bounds
// are the exact min and max. Returns nil before any observation.
func (q *Quantile) Bounds(bins int) []float64 {
	if q.n == 0 || bins < 1 {
		return nil
	}
	if uint64(bins) > q.n {
		bins = int(q.n)
	}
	items := q.flatten()
	bounds := make([]float64, bins+1)
	bounds[0] = q.min
	bounds[bins] = q.max
	cum := uint64(0)
	idx := 0
	for b := 1; b < bins; b++ {
		// target rank for boundary b, rounded to nearest.
		target := (uint64(b)*q.n + uint64(bins)/2) / uint64(bins)
		for idx < len(items) && cum+items[idx].w < target {
			cum += items[idx].w
			idx++
		}
		if idx < len(items) {
			bounds[b] = items[idx].v
		} else {
			bounds[b] = q.max
		}
	}
	// Clamp into [min, max] and enforce monotonicity (compaction can in
	// principle leave a stale extreme adjacent to the exact bounds).
	for b := 1; b < bins; b++ {
		if bounds[b] < bounds[b-1] {
			bounds[b] = bounds[b-1]
		}
		if bounds[b] > q.max {
			bounds[b] = q.max
		}
	}
	return bounds
}

// Rank returns the estimated number of observations <= x.
func (q *Quantile) Rank(x float64) uint64 {
	var r uint64
	for l, lv := range q.levels {
		w := uint64(1) << uint(l)
		// Levels are only guaranteed sorted after compaction; level 0
		// may hold an unsorted tail, so scan linearly. Level sizes are
		// bounded by the cap, keeping this O(cap · levels).
		for _, v := range lv {
			if v <= x {
				r += w
			}
		}
	}
	return r
}

// MarshalBinary renders the sketch canonically: levels are sorted
// before encoding, so states equal as multisets marshal identically.
func (q *Quantile) MarshalBinary() ([]byte, error) {
	out := appendHeader(nil, kindQuantile)
	out = appendU64(out, q.n)
	out = appendU64(out, math.Float64bits(q.min))
	out = appendU64(out, math.Float64bits(q.max))
	out = appendU64(out, uint64(len(q.levels)))
	for l, lv := range q.levels {
		sorted := append([]float64(nil), lv...)
		sort.Float64s(sorted)
		out = appendU64(out, q.compact[l])
		out = appendU64(out, uint64(len(sorted)))
		for _, v := range sorted {
			out = appendU64(out, math.Float64bits(v))
		}
	}
	return out, nil
}

// UnmarshalBinary restores a sketch from MarshalBinary output.
func (q *Quantile) UnmarshalBinary(data []byte) error {
	body, err := checkHeader(data, kindQuantile)
	if err != nil {
		return err
	}
	rd := func() (uint64, error) {
		v, rest, err := readU64(body)
		body = rest
		return v, err
	}
	n, err := rd()
	if err != nil {
		return err
	}
	minBits, err := rd()
	if err != nil {
		return err
	}
	maxBits, err := rd()
	if err != nil {
		return err
	}
	nLevels, err := rd()
	if err != nil {
		return err
	}
	if nLevels > 64 {
		return errSizef("quantile levels", int(nLevels), 64)
	}
	min, max := math.Float64frombits(minBits), math.Float64frombits(maxBits)
	if math.IsNaN(min) || math.IsNaN(max) {
		return errNaN
	}
	q.n = n
	q.min = min
	q.max = max
	q.levels = make([][]float64, 0, nLevels)
	q.compact = make([]uint64, 0, nLevels)
	for l := uint64(0); l < nLevels; l++ {
		c, err := rd()
		if err != nil {
			return err
		}
		sz, err := rd()
		if err != nil {
			return err
		}
		if sz > QuantileCap {
			return errSizef("quantile level", int(sz), QuantileCap)
		}
		lv := make([]float64, 0, QuantileCap)
		for i := uint64(0); i < sz; i++ {
			bits, err := rd()
			if err != nil {
				return err
			}
			v := math.Float64frombits(bits)
			if math.IsNaN(v) {
				return errNaN
			}
			lv = append(lv, v)
		}
		q.levels = append(q.levels, lv)
		q.compact = append(q.compact, c)
	}
	return nil
}
