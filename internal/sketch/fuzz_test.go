package sketch

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzSketch drives all three sketches from one fuzzed byte stream,
// checking the invariants that must hold on arbitrary input:
//
//   - inserts and merges never panic,
//   - counts are monotone (Count-Min estimates only grow, HLL estimates
//     never shrink, quantile N equals the insert count),
//   - marshal → unmarshal → marshal is a byte-identical fixed point,
//   - unmarshal of arbitrary bytes never panics (error or success).
//
// The input is consumed as a little program: each 9-byte chunk is one
// opcode byte plus an 8-byte operand used as a key and, reinterpreted,
// as a float for the quantile sketch.
func FuzzSketch(f *testing.F) {
	f.Add([]byte("seed"))
	f.Add(bytes.Repeat([]byte{0x51, 1, 2, 3, 4, 5, 6, 7, 8}, 12))
	f.Add(func() []byte {
		h := NewHLL()
		h.Add([]byte("x"))
		b, _ := h.MarshalBinary()
		return b
	}())
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes must never panic any decoder.
		_ = NewHLL().UnmarshalBinary(data)
		_ = NewCountMin().UnmarshalBinary(data)
		_ = NewQuantile().UnmarshalBinary(data)

		// Cap the interpreted program: HLL.Estimate is an O(m) register
		// scan per chunk, and unbounded inputs would make single execs
		// arbitrarily slow without covering anything new.
		if len(data) > 4096 {
			data = data[:4096]
		}

		h, h2 := NewHLL(), NewHLL()
		cm, cm2 := NewCountMin(), NewCountMin()
		q, q2 := NewQuantile(), NewQuantile()
		tk := NewTopK(8)
		var quantN uint64
		prevHLL := 0.0
		for i := 0; i+9 <= len(data); i += 9 {
			op, key := data[i], data[i+1:i+9]
			// Alternate target sketch by opcode parity to exercise merges
			// of unequal states.
			ht, ct, qt := h, cm, q
			if op&1 == 1 {
				ht, ct, qt = h2, cm2, q2
			}
			ht.Add(key)
			if est := ht.Estimate(); est < prevHLL && op&1 == 0 && ht == h {
				// HLL estimates are monotone under inserts into the same
				// sketch: registers only grow.
				t.Fatalf("hll estimate shrank: %g -> %g", prevHLL, est)
			}
			if ht == h {
				prevHLL = h.Estimate()
			}
			before := ct.Estimate(key)
			after := ct.Add(key, 1)
			if after < before+1 {
				t.Fatalf("countmin estimate not monotone: %d then add -> %d", before, after)
			}
			tk.Offer(key, after)
			v := math.Float64frombits(binary.LittleEndian.Uint64(key))
			if !math.IsNaN(v) {
				quantN++
			}
			qt.Add(v)
		}
		if q.N()+q2.N() != quantN {
			t.Fatalf("quantile N %d+%d, inserted %d", q.N(), q2.N(), quantN)
		}

		// Merge both halves together; never panics, N adds up.
		h.Merge(h2)
		cm.Merge(cm2)
		q.Merge(q2)
		if q.N() != quantN {
			t.Fatalf("merged quantile N %d, inserted %d", q.N(), quantN)
		}

		// Round-trip fixed point for each sketch kind.
		roundTrip := func(name string, b1 []byte, dec func([]byte) ([]byte, error)) {
			b2, err := dec(b1)
			if err != nil {
				t.Fatalf("%s: decode of own encoding failed: %v", name, err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatalf("%s: round trip not a fixed point", name)
			}
		}
		hb, _ := h.MarshalBinary()
		roundTrip("hll", hb, func(b []byte) ([]byte, error) {
			x := NewHLL()
			if err := x.UnmarshalBinary(b); err != nil {
				return nil, err
			}
			return x.MarshalBinary()
		})
		cb, _ := cm.MarshalBinary()
		roundTrip("countmin", cb, func(b []byte) ([]byte, error) {
			x := NewCountMin()
			if err := x.UnmarshalBinary(b); err != nil {
				return nil, err
			}
			return x.MarshalBinary()
		})
		qb, _ := q.MarshalBinary()
		roundTrip("quantile", qb, func(b []byte) ([]byte, error) {
			x := NewQuantile()
			if err := x.UnmarshalBinary(b); err != nil {
				return nil, err
			}
			return x.MarshalBinary()
		})

		// Bounds must be monotone non-decreasing whatever was inserted.
		if bounds := q.Bounds(10); len(bounds) > 0 {
			for i := 1; i < len(bounds); i++ {
				if bounds[i] < bounds[i-1] {
					t.Fatalf("bounds not monotone at %d: %v", i, bounds)
				}
			}
		}
	})
}
