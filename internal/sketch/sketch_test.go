package sketch

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"testing"
	"testing/quick"
)

// --- HyperLogLog -----------------------------------------------------

// TestHLLWithinTheoreticalBound: the NDV estimate stays within 3 standard
// errors (3·1.04/sqrt(m)) of the truth across six orders of magnitude,
// for sequential and seeded-random key streams. Deterministic: fixed
// keys, fixed hash seed.
func TestHLLWithinTheoreticalBound(t *testing.T) {
	bound := 3 * NewHLL().RelativeErrorBound()
	for _, n := range []int{10, 100, 1000, 10000, 100000, 1000000} {
		for _, mode := range []string{"seq", "rand"} {
			h := NewHLL()
			rng := rand.New(rand.NewSource(int64(n)))
			var buf []byte
			for i := 0; i < n; i++ {
				buf = buf[:0]
				switch mode {
				case "seq":
					buf = strconv.AppendInt(buf, int64(i), 10)
				default:
					buf = strconv.AppendInt(buf, rng.Int63(), 10)
				}
				h.Add(buf)
			}
			est := h.Estimate()
			rel := math.Abs(est-float64(n)) / float64(n)
			// Random keys can repeat; the distinct count is <= n, so only
			// enforce the bound against the exact distinct count.
			if mode == "rand" {
				continue // covered by the quick property below with exact truth
			}
			if rel > bound {
				t.Errorf("n=%d mode=%s: estimate %.1f, relative error %.4f > bound %.4f",
					n, mode, est, rel, bound)
			}
		}
	}
}

// TestHLLRandomKeysProperty: for random key sets with exact distinct
// counts, the estimate honors the 3-sigma bound.
func TestHLLRandomKeysProperty(t *testing.T) {
	bound := 3 * NewHLL().RelativeErrorBound()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(50000)
		h := NewHLL()
		seen := make(map[uint64]bool, n)
		var buf []byte
		for i := 0; i < n; i++ {
			k := rng.Uint64()
			seen[k] = true
			buf = strconv.AppendUint(buf[:0], k, 10)
			h.Add(buf)
			// Duplicates must not move the estimate.
			if i%7 == 0 {
				h.Add(buf)
			}
		}
		truth := float64(len(seen))
		rel := math.Abs(h.Estimate()-truth) / truth
		return rel <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestHLLMergeEqualsUnion: merging sketches of two streams equals
// sketching the concatenated stream, and merge is byte-commutative.
func TestHLLMergeEqualsUnion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, union := NewHLL(), NewHLL(), NewHLL()
		var buf []byte
		for i, n := 0, 200+rng.Intn(2000); i < n; i++ {
			buf = strconv.AppendInt(buf[:0], rng.Int63n(5000), 10)
			if rng.Intn(2) == 0 {
				a.Add(buf)
			} else {
				b.Add(buf)
			}
			union.Add(buf)
		}
		ab := NewHLL()
		ab.Merge(a)
		ab.Merge(b)
		ba := NewHLL()
		ba.Merge(b)
		ba.Merge(a)
		mab, _ := ab.MarshalBinary()
		mba, _ := ba.MarshalBinary()
		mu, _ := union.MarshalBinary()
		return bytes.Equal(mab, mba) && bytes.Equal(mab, mu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// --- Count-Min -------------------------------------------------------

// TestCountMinNeverUnderestimates: the defining guarantee, checked
// against exact counts over adversarially skewed streams.
func TestCountMinNeverUnderestimates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cm := NewCountMin()
		exact := map[string]uint64{}
		n := 500 + rng.Intn(20000)
		var buf []byte
		for i := 0; i < n; i++ {
			// Zipf-ish skew: small ids dominate.
			id := int64(float64(rng.Intn(1000)) * rng.Float64() * rng.Float64())
			buf = strconv.AppendInt(buf[:0], id, 10)
			cm.Add(buf, 1)
			exact[string(buf)]++
		}
		keys := make([]string, 0, len(exact))
		for k := range exact {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if cm.Estimate([]byte(k)) < exact[k] {
				return false
			}
		}
		return cm.N() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestCountMinOverestimateBound: estimates exceed truth by at most
// 2·(e/width)·N across all keys in expectation-dominated streams; the
// fixed seeds make this a regression pin rather than a probabilistic
// assertion.
func TestCountMinOverestimateBound(t *testing.T) {
	cm := NewCountMin()
	exact := map[string]uint64{}
	rng := rand.New(rand.NewSource(7))
	const n = 100000
	var buf []byte
	for i := 0; i < n; i++ {
		buf = strconv.AppendInt(buf[:0], rng.Int63n(5000), 10)
		cm.Add(buf, 1)
		exact[string(buf)]++
	}
	eps := math.E / float64(CountMinWidth)
	slack := 2 * eps * float64(n)
	keys := make([]string, 0, len(exact))
	for k := range exact {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		est := cm.Estimate([]byte(k))
		if float64(est-exact[k]) > slack {
			t.Fatalf("key %s: estimate %d exceeds exact %d by more than %f", k, est, exact[k], slack)
		}
	}
}

// TestCountMinMergeCommutative: merge equals the union stream and is
// byte-commutative.
func TestCountMinMergeCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, union := NewCountMin(), NewCountMin(), NewCountMin()
		var buf []byte
		for i, n := 0, 100+rng.Intn(3000); i < n; i++ {
			buf = strconv.AppendInt(buf[:0], rng.Int63n(300), 10)
			if rng.Intn(2) == 0 {
				a.Add(buf, 1)
			} else {
				b.Add(buf, 1)
			}
			union.Add(buf, 1)
		}
		ab := NewCountMin()
		ab.Merge(a)
		ab.Merge(b)
		ba := NewCountMin()
		ba.Merge(b)
		ba.Merge(a)
		mab, _ := ab.MarshalBinary()
		mba, _ := ba.MarshalBinary()
		mu, _ := union.MarshalBinary()
		return bytes.Equal(mab, mba) && bytes.Equal(mab, mu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// --- TopK ------------------------------------------------------------

// TestTopKFindsHeavyHitters: keys holding >= 2% of a skewed stream are
// always retained when driven by Count-Min estimates.
func TestTopKFindsHeavyHitters(t *testing.T) {
	cm := NewCountMin()
	tk := NewTopK(80)
	exact := map[string]uint64{}
	rng := rand.New(rand.NewSource(11))
	const n = 50000
	var buf []byte
	for i := 0; i < n; i++ {
		var id int64
		if rng.Intn(100) < 40 {
			id = int64(rng.Intn(10)) // 10 heavy keys share ~40%
		} else {
			id = 10 + rng.Int63n(100000)
		}
		buf = strconv.AppendInt(buf[:0], id, 10)
		est := cm.Add(buf, 1)
		tk.Offer(buf, est)
		exact[string(buf)]++
	}
	top := tk.Top(20)
	have := map[string]bool{}
	for _, e := range top {
		have[e.Key] = true
	}
	keys := make([]string, 0, len(exact))
	for k := range exact {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if float64(exact[k]) >= 0.02*n && !have[k] {
			t.Fatalf("heavy key %s (count %d) missing from top-20 %v", k, exact[k], top)
		}
	}
}

// TestTopKExactWhenNoEviction: below capacity the candidate set is the
// exact distinct set, in deterministic order.
func TestTopKExactWhenNoEviction(t *testing.T) {
	tk := NewTopK(10)
	for i := 0; i < 8; i++ {
		key := []byte{byte('a' + i)}
		tk.Offer(key, uint64(i+1))
	}
	if tk.Evicted() {
		t.Fatal("no eviction should have happened")
	}
	if tk.Len() != 8 {
		t.Fatalf("len %d", tk.Len())
	}
	top := tk.Top(3)
	want := []Entry{{"h", 8}, {"g", 7}, {"f", 6}}
	for i, e := range top {
		if e != want[i] {
			t.Fatalf("top[%d] = %+v, want %+v", i, e, want[i])
		}
	}
}

// TestTopKDeterministicTies: equal counts order and evict by key bytes,
// never by map iteration order.
func TestTopKDeterministicTies(t *testing.T) {
	run := func() []Entry {
		tk := NewTopK(3)
		for _, k := range []string{"d", "b", "c", "a", "e"} {
			tk.Offer([]byte(k), 5)
		}
		return tk.Top(3)
	}
	first := run()
	for i := 0; i < 50; i++ {
		if got := run(); !entriesEqual(got, first) {
			t.Fatalf("run %d produced %v, first run %v", i, got, first)
		}
	}
	// Ties evict the lexicographically largest candidate, so the three
	// smallest keys survive.
	want := []Entry{{"a", 5}, {"b", 5}, {"c", 5}}
	if !entriesEqual(first, want) {
		t.Fatalf("tie survivors %v, want %v", first, want)
	}
}

// TestTopKRejectionBreaksCompleteness: a distinct key turned away at a
// full heap (not only one displacing an entry) must clear the
// exact-candidate-set claim. Regression: 100 equal-count keys arriving
// in ascending key order never displace anything, yet only 80 are
// tracked.
func TestTopKRejectionBreaksCompleteness(t *testing.T) {
	tk := NewTopK(80)
	var buf []byte
	for i := 0; i < 100; i++ {
		buf = strconv.AppendInt(buf[:0], 1000+int64(i), 10)
		tk.Offer(buf, 1)
	}
	if !tk.Evicted() {
		t.Fatal("100 distinct keys through a size-80 tracker must report eviction")
	}
	if tk.Len() != 80 {
		t.Fatalf("len %d", tk.Len())
	}
}

func entriesEqual(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- Quantile --------------------------------------------------------

// quantileDistributions are the streams the rank-error property runs
// over: uniform, normal, heavily duplicated, pre-sorted ascending and
// descending, and constant.
func quantileDistributions(n int, seed int64) map[string][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := map[string][]float64{}
	u := make([]float64, n)
	for i := range u {
		u[i] = rng.Float64() * 1e6
	}
	out["uniform"] = u
	g := make([]float64, n)
	for i := range g {
		g[i] = rng.NormFloat64() * 100
	}
	out["normal"] = g
	d := make([]float64, n)
	for i := range d {
		d[i] = float64(rng.Intn(50))
	}
	out["duplicated"] = d
	asc := make([]float64, n)
	for i := range asc {
		asc[i] = float64(i)
	}
	out["ascending"] = asc
	desc := make([]float64, n)
	for i := range desc {
		desc[i] = float64(n - i)
	}
	out["descending"] = desc
	c := make([]float64, n)
	for i := range c {
		c[i] = 42
	}
	out["constant"] = c
	return out
}

// trueRank counts values <= x in the reference slice (sorted).
func trueRank(sorted []float64, x float64) int {
	return sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
}

// TestQuantileRankErrorBound: every equi-depth boundary the sketch
// reports sits within N/bins true ranks of its target, for bins up to
// QuantileBinsMax, across all distributions and sizes up to 10^6.
func TestQuantileRankErrorBound(t *testing.T) {
	sizes := []int{100, 10000, 200000}
	if !testing.Short() {
		sizes = append(sizes, 1000000)
	}
	for _, n := range sizes {
		for name, vals := range quantileDistributions(n, int64(n)) {
			q := NewQuantile()
			for _, v := range vals {
				q.Add(v)
			}
			sorted := append([]float64(nil), vals...)
			sort.Float64s(sorted)
			for _, bins := range []int{10, QuantileBinsMax} {
				b := q.Bounds(bins)
				eb := bins
				if eb > n {
					eb = n
				}
				if len(b) != eb+1 {
					t.Fatalf("n=%d %s bins=%d: %d bounds", n, name, bins, len(b))
				}
				budget := float64(n) / float64(bins)
				for i := 1; i < len(b)-1; i++ {
					target := float64(i) * float64(n) / float64(eb)
					got := float64(trueRank(sorted, b[i]))
					// The boundary value's own duplicates can legitimately
					// carry its true rank past the target; measure the
					// nearest rank the value's occurrences cover.
					lo := float64(sort.SearchFloat64s(sorted, b[i]))
					err := 0.0
					switch {
					case target < lo:
						err = lo - target
					case target > got:
						err = target - got
					}
					if err > budget {
						t.Fatalf("n=%d %s bins=%d boundary %d (v=%g): rank error %.0f > budget %.0f",
							n, name, bins, i, b[i], err, budget)
					}
				}
				if b[0] != sorted[0] || b[len(b)-1] != sorted[n-1] {
					t.Fatalf("n=%d %s: end bounds %g..%g, want exact %g..%g",
						n, name, b[0], b[len(b)-1], sorted[0], sorted[n-1])
				}
			}
		}
	}
}

// TestQuantileMergeCommutative: merge(a,b) and merge(b,a) marshal
// byte-identically and keep the rank-error budget.
func TestQuantileMergeCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := NewQuantile(), NewQuantile()
		n := 500 + rng.Intn(20000)
		all := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			v := rng.NormFloat64() * 1000
			all = append(all, v)
			if rng.Intn(2) == 0 {
				a.Add(v)
			} else {
				b.Add(v)
			}
		}
		ab, ba := NewQuantile(), NewQuantile()
		ab.Merge(a)
		ab.Merge(b)
		ba.Merge(b)
		ba.Merge(a)
		mab, _ := ab.MarshalBinary()
		mba, _ := ba.MarshalBinary()
		if !bytes.Equal(mab, mba) {
			return false
		}
		// The merged sketch still answers within a doubled budget (each
		// operand contributes its own compaction error).
		sort.Float64s(all)
		bounds := ab.Bounds(QuantileBinsMax)
		budget := 2 * float64(n) / float64(QuantileBinsMax)
		for i := 1; i < len(bounds)-1; i++ {
			target := float64(i) * float64(n) / float64(QuantileBinsMax)
			got := float64(trueRank(all, bounds[i]))
			lo := float64(sort.SearchFloat64s(all, bounds[i]))
			if (target < lo && lo-target > budget) || (target > got && target-got > budget) {
				return false
			}
		}
		return ab.N() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestQuantileBoundedMemory: level count grows logarithmically, level
// sizes stay under the cap — the O(cap·log(N/cap)) memory contract.
func TestQuantileBoundedMemory(t *testing.T) {
	q := NewQuantile()
	for i := 0; i < 1000000; i++ {
		q.Add(float64(i % 9973))
	}
	if len(q.levels) > 16 {
		t.Fatalf("%d levels for 10^6 inserts", len(q.levels))
	}
	for l, lv := range q.levels {
		if len(lv) > QuantileCap {
			t.Fatalf("level %d holds %d items, cap %d", l, len(lv), QuantileCap)
		}
	}
}

// --- serialization ---------------------------------------------------

// TestSerializeRoundTrips: marshal → unmarshal → marshal is a fixed
// point for every sketch kind, and corrupted headers are rejected.
func TestSerializeRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h, cm, q := NewHLL(), NewCountMin(), NewQuantile()
	var buf []byte
	for i := 0; i < 5000; i++ {
		buf = strconv.AppendInt(buf[:0], rng.Int63n(1000), 10)
		h.Add(buf)
		cm.Add(buf, 1)
		q.Add(rng.NormFloat64())
	}
	check := func(name string, m interface {
		MarshalBinary() ([]byte, error)
	}, fresh func(data []byte) ([]byte, error)) {
		b1, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		b2, err := fresh(b1)
		if err != nil {
			t.Fatalf("%s: round trip: %v", name, err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s: round trip is not a fixed point", name)
		}
		if _, err := fresh(nil); err == nil {
			t.Fatalf("%s: empty input accepted", name)
		}
		bad := append([]byte(nil), b1...)
		bad[0] ^= 0xff
		if _, err := fresh(bad); err == nil {
			t.Fatalf("%s: wrong kind byte accepted", name)
		}
		bad = append([]byte(nil), b1...)
		bad[1] = formatVersion + 1
		if _, err := fresh(bad); err == nil {
			t.Fatalf("%s: future format version accepted", name)
		}
	}
	check("hll", h, func(data []byte) ([]byte, error) {
		x := NewHLL()
		if err := x.UnmarshalBinary(data); err != nil {
			return nil, err
		}
		return x.MarshalBinary()
	})
	check("countmin", cm, func(data []byte) ([]byte, error) {
		x := NewCountMin()
		if err := x.UnmarshalBinary(data); err != nil {
			return nil, err
		}
		return x.MarshalBinary()
	})
	check("quantile", q, func(data []byte) ([]byte, error) {
		x := NewQuantile()
		if err := x.UnmarshalBinary(data); err != nil {
			return nil, err
		}
		return x.MarshalBinary()
	})
}

// TestHashDeterminism pins the hash function: a changed constant would
// silently invalidate every persisted sketch.
func TestHashDeterminism(t *testing.T) {
	if got := Hash64([]byte("lineitem")); got != Hash64([]byte("lineitem")) {
		t.Fatal("hash is not deterministic")
	}
	if Hash64([]byte("a")) == Hash64([]byte("b")) {
		t.Fatal("trivial collision")
	}
	// Register dispersion sanity: sequential ints should fill registers.
	h := NewHLL()
	var buf []byte
	for i := 0; i < 100000; i++ {
		buf = strconv.AppendInt(buf[:0], int64(i), 10)
		h.Add(buf)
	}
	zeros := 0
	for _, r := range h.reg {
		if r == 0 {
			zeros++
		}
	}
	if zeros > hllM/100 {
		t.Fatalf("%d of %d registers untouched after 10^5 distinct keys", zeros, hllM)
	}
}

func BenchmarkSketchInsert(b *testing.B) {
	for _, kind := range []string{"hll", "countmin", "quantile"} {
		b.Run(kind, func(b *testing.B) {
			h, cm, q := NewHLL(), NewCountMin(), NewQuantile()
			var buf []byte
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				switch kind {
				case "hll":
					buf = strconv.AppendInt(buf[:0], int64(i), 10)
					h.Add(buf)
				case "countmin":
					buf = strconv.AppendInt(buf[:0], int64(i), 10)
					cm.Add(buf, 1)
				default:
					q.Add(float64(i))
				}
			}
		})
	}
}

var _ = fmt.Sprintf // keep fmt imported for debug scaffolding in failures
