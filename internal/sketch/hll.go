package sketch

import (
	"math"
	"math/bits"
)

// HLLPrecision is the register-index width: 2^14 = 16384 registers,
// 16 KiB per column, standard relative error 1.04/sqrt(2^14) ≈ 0.81%.
const HLLPrecision = 14

// hllM is the register count.
const hllM = 1 << HLLPrecision

// hllQ is the rank-value width: ranks run 0..hllQ+1.
const hllQ = 64 - HLLPrecision

// HLL is a HyperLogLog distinct-value counter. The zero value is not
// usable; construct with NewHLL.
type HLL struct {
	reg []uint8
}

// NewHLL returns an empty HyperLogLog sketch.
func NewHLL() *HLL { return &HLL{reg: make([]uint8, hllM)} }

// Add observes one key.
func (h *HLL) Add(key []byte) { h.AddHash(Hash64(key)) }

// AddHash observes a pre-hashed key; Add and AddHash(Hash64(key)) are
// interchangeable, letting callers share one hash across sketches.
func (h *HLL) AddHash(v uint64) {
	idx := v >> (64 - HLLPrecision)
	w := v << HLLPrecision
	var rank uint8
	if w == 0 {
		rank = 64 - HLLPrecision + 1
	} else {
		rank = uint8(bits.LeadingZeros64(w)) + 1
	}
	if rank > h.reg[idx] {
		h.reg[idx] = rank
	}
}

// Estimate returns the estimated number of distinct keys observed,
// using Ertl's improved raw estimator over the register histogram. The
// estimator is asymptotically unbiased across the whole cardinality
// range — in particular it has no bias hump at the classic
// linear-counting/raw-estimate crossover near 2.5m — so no empirical
// correction tables are needed and the 1.04/sqrt(m) error holds
// uniformly.
func (h *HLL) Estimate() float64 {
	// Histogram of register values: counts[k] = registers holding rank k.
	var counts [hllQ + 2]uint32
	for _, r := range h.reg {
		counts[r]++
	}
	m := float64(hllM)
	z := m * hllTau(1-float64(counts[hllQ+1])/m)
	for k := hllQ; k >= 1; k-- {
		z = 0.5 * (z + float64(counts[k]))
	}
	z += m * hllSigma(float64(counts[0])/m)
	return m * m / z / (2 * math.Ln2)
}

// hllSigma computes x + x^2 + 2x^4 + 4x^8 + ... , the linear-counting
// side of Ertl's estimator. Diverges (returns +Inf) at x = 1, i.e. when
// every register is still zero.
func hllSigma(x float64) float64 {
	//qpplint:ignore floateq x is counts[0]/m, exactly 1 only when every register is zero
	if x == 1 {
		return math.Inf(1)
	}
	y, z := 1.0, x
	for {
		x *= x
		prev := z
		z += x * y
		y += y
		//qpplint:ignore floateq fixed-point convergence: terminate when the float stops changing
		if z == prev {
			return z
		}
	}
}

// hllTau computes the saturated-register tail correction of Ertl's
// estimator.
func hllTau(x float64) float64 {
	//qpplint:ignore floateq x is a register-count ratio; the boundary cases are exact
	if x == 0 || x == 1 {
		return 0
	}
	y, z := 1.0, 1-x
	for {
		x = math.Sqrt(x)
		prev := z
		y *= 0.5
		d := 1 - x
		z -= d * d * y
		//qpplint:ignore floateq fixed-point convergence: terminate when the float stops changing
		if z == prev {
			return z / 3
		}
	}
}

// RelativeErrorBound is the sketch's standard relative error,
// 1.04/sqrt(m) — the theoretical bound the property tests pin.
func (h *HLL) RelativeErrorBound() float64 {
	return 1.04 / math.Sqrt(hllM)
}

// Merge folds other into h (register-wise max). Merging is commutative
// and idempotent: merge(a,b) and merge(b,a) are byte-identical.
func (h *HLL) Merge(other *HLL) {
	for i, r := range other.reg {
		if r > h.reg[i] {
			h.reg[i] = r
		}
	}
}

// MarshalBinary renders the sketch in its canonical byte encoding.
func (h *HLL) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 2+hllM)
	out = appendHeader(out, kindHLL)
	out = append(out, h.reg...)
	return out, nil
}

// UnmarshalBinary restores a sketch from MarshalBinary output.
func (h *HLL) UnmarshalBinary(data []byte) error {
	body, err := checkHeader(data, kindHLL)
	if err != nil {
		return err
	}
	if len(body) != hllM {
		return errSizef("hll", len(body), hllM)
	}
	h.reg = make([]uint8, hllM)
	copy(h.reg, body)
	return nil
}
