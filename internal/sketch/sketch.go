// Package sketch implements the streaming summaries behind the one-pass
// ANALYZE: HyperLogLog for distinct-value counts, Count-Min for value
// frequencies (with a deterministic top-k candidate heap for MCV lists),
// and a deterministic compacting quantile sketch for equi-depth histogram
// bounds. Everything is stdlib-only and deterministic: hashing is seeded
// by fixed constants, compaction follows a fixed schedule, and merges are
// commutative down to the serialized byte level — merge(a,b) and
// merge(b,a) marshal identically. None of the sketches ever reads the
// wall clock or the global rand source; the package sits inside the
// repo's deterministic core (qpplint enforces this).
//
// Error guarantees (checked by property tests in sketch_test.go):
//
//   - HLL: relative NDV error concentrated within 1.04/sqrt(m), m=2^14.
//   - Count-Min: estimates never underestimate; overestimate bounded by
//     e/width * N per row with probability 1-(1/e)^depth.
//   - Quantile: rank error of any reported boundary is at most N/bins
//     for bins <= QuantileBinsMax (the compaction budget is sized so the
//     deterministic worst case stays under 1%).
package sketch

import (
	"encoding/binary"
	"fmt"
)

// hashSeed fixes the hash function once and for all: repeated ANALYZE
// runs over the same data are bit-identical.
const hashSeed = 0x9e3779b97f4a7c15

// Hash64 hashes a byte key to 64 bits: FNV-1a followed by a splitmix64
// finalizer for avalanche (FNV alone clusters on short sequential keys,
// which would wreck HLL register dispersion).
func Hash64(key []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ hashSeed
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Binary layout helpers. Every sketch serializes as
//
//	magic byte | format version byte | sketch-specific payload
//
// with all integers little-endian and all floats IEEE-754 bit patterns.
// The encoding is canonical: equal sketch states marshal to equal bytes.
const formatVersion = 1

// Magic bytes distinguishing the sketch kinds on the wire.
const (
	kindHLL      byte = 0x48 // 'H'
	kindCountMin byte = 0x43 // 'C'
	kindQuantile byte = 0x51 // 'Q'
)

func appendHeader(b []byte, kind byte) []byte {
	return append(b, kind, formatVersion)
}

func checkHeader(b []byte, kind byte) ([]byte, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("sketch: truncated input (%d bytes)", len(b))
	}
	if b[0] != kind {
		return nil, fmt.Errorf("sketch: kind byte 0x%02x, want 0x%02x", b[0], kind)
	}
	if b[1] != formatVersion {
		return nil, fmt.Errorf("sketch: format version %d, this build reads %d", b[1], formatVersion)
	}
	return b[2:], nil
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func readU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("sketch: truncated uint64")
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

// errNaN rejects NaN payloads on decode: Add never admits NaN (it has
// no rank), so a NaN on the wire is corruption, and accepting it would
// break canonical-encoding idempotence.
var errNaN = fmt.Errorf("sketch: NaN in quantile payload")

func errSizef(what string, got, want int) error {
	return fmt.Errorf("sketch: %s payload is %d bytes, want %d", what, got, want)
}
