package sketch

// Count-Min geometry. Width 2048 bounds the overestimate at
// e/2048 ≈ 0.13% of the stream length per update; depth 4 drives the
// failure probability of that bound to (1/e)^4 ≈ 1.8%. 4·2048 uint64
// counters are 64 KiB per column — bounded regardless of scale factor.
const (
	CountMinDepth = 4
	CountMinWidth = 2048
)

// CountMin is a Count-Min frequency sketch. Estimates never
// underestimate the true count of a key (every update increments all of
// a key's counters), which is the invariant MCV frequency estimation
// relies on: a value reported heavy truly occurred at least
// (estimate - εN) times.
type CountMin struct {
	rows [CountMinDepth][CountMinWidth]uint64
	n    uint64 // total updates (stream length)
}

// NewCountMin returns an empty Count-Min sketch.
func NewCountMin() *CountMin { return &CountMin{} }

// positions derives the per-row counter indexes from one 64-bit hash via
// the Kirsch-Mitzenmacher construction g_i(x) = h1 + i·h2. h2 is forced
// odd so the row index sequences never degenerate.
func cmPositions(h uint64) [CountMinDepth]uint32 {
	h1 := h
	h2 := mix64(h^hashSeed) | 1
	var pos [CountMinDepth]uint32
	for i := 0; i < CountMinDepth; i++ {
		pos[i] = uint32((h1 + uint64(i)*h2) & (CountMinWidth - 1))
	}
	return pos
}

// Add observes key count times and returns the updated estimate.
func (c *CountMin) Add(key []byte, count uint64) uint64 {
	return c.AddHash(Hash64(key), count)
}

// AddHash is Add over a pre-hashed key.
func (c *CountMin) AddHash(h uint64, count uint64) uint64 {
	pos := cmPositions(h)
	c.n += count
	min := ^uint64(0)
	for i := 0; i < CountMinDepth; i++ {
		c.rows[i][pos[i]] += count
		if v := c.rows[i][pos[i]]; v < min {
			min = v
		}
	}
	return min
}

// Estimate returns the (over-)estimated count of key.
func (c *CountMin) Estimate(key []byte) uint64 {
	return c.EstimateHash(Hash64(key))
}

// EstimateHash is Estimate over a pre-hashed key.
func (c *CountMin) EstimateHash(h uint64) uint64 {
	pos := cmPositions(h)
	min := ^uint64(0)
	for i := 0; i < CountMinDepth; i++ {
		if v := c.rows[i][pos[i]]; v < min {
			min = v
		}
	}
	return min
}

// N returns the total number of observations.
func (c *CountMin) N() uint64 { return c.n }

// Merge folds other into c (counter-wise addition). Commutative:
// merge(a,b) and merge(b,a) are byte-identical.
func (c *CountMin) Merge(other *CountMin) {
	for i := range c.rows {
		for j := range c.rows[i] {
			c.rows[i][j] += other.rows[i][j]
		}
	}
	c.n += other.n
}

// MarshalBinary renders the sketch in its canonical byte encoding.
func (c *CountMin) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 2+8+CountMinDepth*CountMinWidth*8)
	out = appendHeader(out, kindCountMin)
	out = appendU64(out, c.n)
	for i := range c.rows {
		for j := range c.rows[i] {
			out = appendU64(out, c.rows[i][j])
		}
	}
	return out, nil
}

// UnmarshalBinary restores a sketch from MarshalBinary output.
func (c *CountMin) UnmarshalBinary(data []byte) error {
	body, err := checkHeader(data, kindCountMin)
	if err != nil {
		return err
	}
	want := 8 + CountMinDepth*CountMinWidth*8
	if len(body) != want {
		return errSizef("countmin", len(body), want)
	}
	n, body, err := readU64(body)
	if err != nil {
		return err
	}
	c.n = n
	for i := range c.rows {
		for j := range c.rows[i] {
			v, rest, err := readU64(body)
			if err != nil {
				return err
			}
			c.rows[i][j] = v
			body = rest
		}
	}
	return nil
}
