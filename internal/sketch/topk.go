package sketch

import "sort"

// TopK tracks the heavy-hitter candidates of a stream: the k keys with
// the largest Count-Min estimates seen so far. It is the MCV-list side
// of the Count-Min sketch — CM alone can estimate any key's frequency
// but cannot enumerate the heavy ones, so ANALYZE offers every observed
// key here and keeps the survivors.
//
// The structure is a min-heap of (count, key) with a map for O(1)
// membership, totally ordered by (count, then key bytes descending) so
// eviction is deterministic: ties never depend on map iteration order.
// A key whose estimate exceeds the current minimum evicts it; keys
// already tracked only ever grow. Memory is O(k) strings.
type TopK struct {
	cap     int
	heap    []tkEntry
	pos     map[string]int // key -> heap index; single-writer, no locking
	evicted bool
}

type tkEntry struct {
	key   string
	count uint64
}

// NewTopK returns a tracker keeping at most k candidates.
func NewTopK(k int) *TopK {
	return &TopK{cap: k, pos: make(map[string]int, k)}
}

// Offer reports an observation of key with its current count estimate.
// The key bytes are only copied when the key actually enters the
// candidate set, so the common case (already tracked, or too small)
// allocates nothing.
func (t *TopK) Offer(key []byte, count uint64) {
	if i, ok := t.pos[string(key)]; ok { // no-alloc map probe
		t.heap[i].count = count
		t.siftDown(i)
		return
	}
	if len(t.heap) < t.cap {
		t.heap = append(t.heap, tkEntry{key: string(key), count: count})
		i := len(t.heap) - 1
		t.pos[t.heap[i].key] = i
		t.siftUp(i)
		return
	}
	// The heap is full and this key is not in it: whether it displaces
	// the minimum or is turned away, a distinct key now falls outside
	// the candidate set, so completeness is lost either way.
	t.evicted = true
	if t.cap == 0 {
		return
	}
	// Replace the minimum only when the newcomer is strictly greater
	// under the total order (count, then key bytes descending).
	min := t.heap[0]
	if count < min.count || (count == min.count && !(string(key) < min.key)) {
		return
	}
	delete(t.pos, t.heap[0].key)
	t.heap[0] = tkEntry{key: string(key), count: count}
	t.pos[t.heap[0].key] = 0
	t.siftDown(0)
}

// Evicted reports whether any distinct key ever fell outside the
// candidate set — displaced from the full heap or turned away at it.
// When false, the candidate set is exactly the set of distinct keys
// observed — the low-cardinality case where ANALYZE can report exact
// NDV and a complete MCV list.
func (t *TopK) Evicted() bool { return t.evicted }

// Len returns the current candidate count.
func (t *TopK) Len() int { return len(t.heap) }

// Entry is one surviving candidate.
type Entry struct {
	Key   string
	Count uint64
}

// Top returns up to n candidates ordered by count descending, key
// ascending — the deterministic MCV order.
func (t *TopK) Top(n int) []Entry {
	out := make([]Entry, 0, len(t.heap))
	for _, e := range t.heap {
		out = append(out, Entry{Key: e.key, Count: e.count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// tkLess is the heap's total order: smallest count first, ties broken by
// key bytes descending (so on a tie the lexicographically larger key
// sits nearer the root and is evicted first — any fixed choice works,
// it just must be total).
func tkLess(a, b tkEntry) bool {
	if a.count != b.count {
		return a.count < b.count
	}
	return a.key > b.key
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !tkLess(t.heap[i], t.heap[p]) {
			return
		}
		t.swap(i, p)
		i = p
	}
}

func (t *TopK) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(t.heap) && tkLess(t.heap[l], t.heap[small]) {
			small = l
		}
		if r < len(t.heap) && tkLess(t.heap[r], t.heap[small]) {
			small = r
		}
		if small == i {
			return
		}
		t.swap(i, small)
		i = small
	}
}

func (t *TopK) swap(i, j int) {
	t.heap[i], t.heap[j] = t.heap[j], t.heap[i]
	t.pos[t.heap[i].key] = i
	t.pos[t.heap[j].key] = j
}
