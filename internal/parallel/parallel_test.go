package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		n := 57
		hits := make([]int32, n)
		err := ForEach(n, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(10, workers, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 3" {
			t.Fatalf("workers=%d: got %v, want lowest-index error", workers, err)
		}
	}
}

func TestForEachKeepsGoingAfterError(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	err := ForEach(20, 4, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 20 {
		t.Fatalf("ran %d of 20 after error", ran.Load())
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if DefaultWorkers(0) < 1 {
		t.Fatal("GOMAXPROCS default must be >= 1")
	}
	if DefaultWorkers(-1) < 1 {
		t.Fatal("negative must resolve to >= 1")
	}
	if DefaultWorkers(5) != 5 {
		t.Fatal("positive passes through")
	}
}
