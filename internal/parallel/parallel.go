// Package parallel is the worker-pool substrate behind the repo's
// parallel execution layer: a deterministic fan-out primitive used by
// workload building, cross-validation, and the figure drivers.
//
// Determinism contract: ForEach(n, w, fn) calls fn exactly once for every
// index in [0, n), and callers assign all outputs to index-addressed
// slots. Because nothing an fn computes may depend on worker identity or
// completion order, the assembled outputs are bit-identical for every
// worker count, including the serial fast path (w <= 1). On error the
// lowest-index error is returned, matching what a serial loop that
// continued past failures would report first.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers resolves a worker-count setting: values <= 0 mean
// GOMAXPROCS (one worker per schedulable CPU), anything else is taken
// as-is.
func DefaultWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines (workers <= 0 selects GOMAXPROCS). Indexes are handed out
// atomically; every fn runs exactly once even when some fail. It returns
// the error with the lowest index, or nil.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = DefaultWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Serial fast path: identical call order to the pre-parallel code,
		// but the same keep-going error semantics as the pool below.
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
