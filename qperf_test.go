package qperf_test

import (
	"math"
	"strings"
	"sync"
	"testing"

	"qpp"
)

var (
	apiWorkloadOnce sync.Once
	apiTrain        *qperf.Workload
	apiErr          error
)

func apiTrainingWorkload(t *testing.T) *qperf.Workload {
	t.Helper()
	apiWorkloadOnce.Do(func() {
		apiTrain, apiErr = qperf.BuildWorkload(qperf.WorkloadConfig{
			ScaleFactor: 0.003,
			Templates:   []int{1, 3, 6, 12},
			PerTemplate: 8,
			Seed:        17,
		})
	})
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	return apiTrain
}

func TestEngineExplainAndRun(t *testing.T) {
	engine, err := qperf.NewEngine(qperf.EngineConfig{ScaleFactor: 0.002, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := engine.Explain("select count(*) from orders where o_orderdate < date '1995-01-01'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Seq Scan on orders") || !strings.Contains(out, "cost=") {
		t.Fatalf("explain output:\n%s", out)
	}
	res, err := engine.Run("select count(*) from lineitem", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Elapsed <= 0 {
		t.Fatalf("run result %v / %v", res.Rows, res.Elapsed)
	}
	li, _ := engine.DB().Table("lineitem")
	if res.Rows[0][0].I != int64(len(li.Rows)) {
		t.Fatalf("count %v want %d", res.Rows[0][0], len(li.Rows))
	}
	analyzed, err := engine.ExplainAnalyze("select count(*) from nation", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(analyzed, "actual time=") {
		t.Fatalf("explain analyze missing actuals:\n%s", analyzed)
	}
}

func TestEngineErrors(t *testing.T) {
	engine, err := qperf.NewEngine(qperf.EngineConfig{ScaleFactor: 0.002, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Plan("select * from nonexistent"); err == nil {
		t.Fatal("unknown table must fail")
	}
	if _, err := engine.Plan("not sql at all ("); err == nil {
		t.Fatal("parse error must surface")
	}
	if _, err := qperf.NewEngine(qperf.EngineConfig{ScaleFactor: -1}); err == nil {
		t.Fatal("negative SF must fail")
	}
}

func TestWorkloadAndPredictorsEndToEnd(t *testing.T) {
	train := apiTrainingWorkload(t)
	if train.Len() != 32 {
		t.Fatalf("train size %d", train.Len())
	}
	test, err := qperf.BuildWorkload(qperf.WorkloadConfig{
		ScaleFactor: 0.003,
		Templates:   []int{1, 3, 6, 12},
		PerTemplate: 2,
		Seed:        999,
	})
	if err != nil {
		t.Fatal(err)
	}

	baseline, err := qperf.TrainCostBaseline(train)
	if err != nil {
		t.Fatal(err)
	}
	planLevel, err := qperf.TrainPlanLevel(train)
	if err != nil {
		t.Fatal(err)
	}
	opLevel, err := qperf.TrainOperatorLevel(train)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := qperf.TrainHybrid(train, qperf.ErrorBased)
	if err != nil {
		t.Fatal(err)
	}
	online, err := qperf.NewOnlinePredictor(train)
	if err != nil {
		t.Fatal(err)
	}

	results := map[string]float64{}
	for _, p := range []qperf.Predictor{baseline, planLevel, opLevel, hybrid, online} {
		mre, skipped, err := qperf.MeanRelativeError(p, test)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if math.IsNaN(mre) || mre < 0 {
			t.Fatalf("%s: bad MRE %v", p.Name(), mre)
		}
		if skipped != 0 {
			t.Fatalf("%s: unexpected skips %d", p.Name(), skipped)
		}
		results[p.Name()] = mre
		t.Logf("%-18s MRE=%.3f", p.Name(), mre)
	}
	if results["plan-level"] >= results["cost-model"] {
		t.Fatalf("plan-level (%.3f) must beat cost baseline (%.3f)",
			results["plan-level"], results["cost-model"])
	}
}

func TestWorkloadFilterAndSplit(t *testing.T) {
	train := apiTrainingWorkload(t)
	only1 := train.Filter([]int{1})
	if only1.Len() != 8 {
		t.Fatalf("filter %d", only1.Len())
	}
	tr, te := train.SplitTemplate(3)
	if te.Len() != 8 || tr.Len() != 24 {
		t.Fatalf("split %d/%d", tr.Len(), te.Len())
	}
	rebuilt := qperf.NewWorkload(train.Queries())
	if rebuilt.Len() != train.Len() {
		t.Fatal("NewWorkload round trip")
	}
}

func TestQueryAccessors(t *testing.T) {
	train := apiTrainingWorkload(t)
	q := train.Queries()[0]
	if q.Template() == 0 || q.SQL() == "" || q.Latency() <= 0 || q.Plan() == nil {
		t.Fatalf("query accessors: %d %q %v", q.Template(), q.SQL()[:20], q.Latency())
	}
}

func TestRecordFromAdHocQuery(t *testing.T) {
	engine, err := qperf.NewEngine(qperf.EngineConfig{ScaleFactor: 0.002, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	const sqlText = "select o_orderpriority, count(*) from orders group by o_orderpriority"
	res, err := engine.Run(sqlText, 5)
	if err != nil {
		t.Fatal(err)
	}
	q := res.Record(0, sqlText)
	if q.Latency() != res.Elapsed {
		t.Fatal("record latency mismatch")
	}
}

func TestTemplateListsAndGenerate(t *testing.T) {
	if len(qperf.Templates()) != 18 {
		t.Fatalf("templates %v", qperf.Templates())
	}
	if len(qperf.OperatorLevelTemplates()) != 14 {
		t.Fatal("op templates")
	}
	sqlText, err := qperf.GenerateQuery(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sqlText, "c_mktsegment") {
		t.Fatalf("generated Q3: %s", sqlText)
	}
	if _, err := qperf.GenerateQuery(99, 1); err == nil {
		t.Fatal("unknown template must fail")
	}
}
