// Progressive prediction (the paper's Section 7 extension): predictions
// that are continually refined during query execution. Before the query
// starts we only have static features; as operators finish, their observed
// timings replace model estimates and the prediction converges to the
// true latency.
package main

import (
	"fmt"
	"log"

	"qpp"
)

func main() {
	train, err := qperf.BuildWorkload(qperf.WorkloadConfig{
		ScaleFactor: 0.008,
		Templates:   []int{1, 3, 5, 10, 12},
		PerTemplate: 10,
		Seed:        55,
	})
	if err != nil {
		log.Fatal(err)
	}
	prog, err := qperf.NewProgressive(train)
	if err != nil {
		log.Fatal(err)
	}

	// New queries from one of the trained templates.
	test, err := qperf.BuildWorkload(qperf.WorkloadConfig{
		ScaleFactor: 0.008,
		Templates:   []int{5},
		PerTemplate: 3,
		Seed:        777,
	})
	if err != nil {
		log.Fatal(err)
	}
	fractions := []float64{0, 0.25, 0.5, 0.75, 0.95}
	for _, q := range test.Queries() {
		fmt.Printf("\nquery (Q%d), actual latency %.4fs:\n", q.Template(), q.Latency())
		traj, err := prog.Trajectory(q, fractions)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range traj {
			fmt.Printf("  at %3.0f%% executed: predict %.4fs (error %5.1f%%)\n",
				100*p.Fraction, p.Prediction, 100*p.RelError)
		}
	}
	fmt.Println("\nPredictions converge to the actual latency as execution progresses.")
}
