// Online model building (Section 4 of the paper): a new query arrives; we
// immediately produce an operator-level prediction with pre-built models,
// then refine it by building plan-level models online for the query's own
// sub-plans over the already-logged training data — no new sample runs.
// This demonstrates the paper's "progressively improved predictions".
package main

import (
	"fmt"
	"log"

	"qpp"
)

func main() {
	// Training workload: five templates, none of them template 10.
	all, err := qperf.BuildWorkload(qperf.WorkloadConfig{
		ScaleFactor: 0.008,
		Templates:   []int{1, 3, 4, 5, 14, 10},
		PerTemplate: 12,
		Seed:        33,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, incoming := all.SplitTemplate(10)

	// Pre-built models, ready before any query arrives.
	opLevel, err := qperf.TrainOperatorLevel(train)
	if err != nil {
		log.Fatal(err)
	}
	// The online predictor wraps the same operator models plus the
	// training sub-plan index; per query it decides which sub-plan models
	// are worth building.
	online, err := qperf.NewOnlinePredictor(train)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("new Q10 queries arriving (template unseen in training):")
	fmt.Println("\n  immediate (op-level)   refined (online)   actual")
	for i, q := range incoming.Queries() {
		if i >= 6 {
			break
		}
		immediate, err := opLevel.Predict(q)
		if err != nil {
			log.Fatal(err)
		}
		refined, err := online.Predict(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %18.4fs %18.4fs %8.4fs\n", immediate, refined, q.Latency())
	}

	for _, p := range []qperf.Predictor{opLevel, online} {
		mre, _, err := qperf.MeanRelativeError(p, incoming)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-22s MRE over all incoming queries: %.1f%%", p.Name(), 100*mre)
	}
	fmt.Println()
}
