// Quickstart: generate a TPC-H database, execute a training workload,
// train the paper's plan-level predictor, and predict the latency of new
// queries before running them.
package main

import (
	"fmt"
	"log"

	"qpp"
)

func main() {
	// 1. Execute a training workload: 15 instances each of three TPC-H
	// templates on a small generated database. Every query is planned,
	// executed cold, and instrumented.
	train, err := qperf.BuildWorkload(qperf.WorkloadConfig{
		ScaleFactor: 0.005,
		Templates:   []int{1, 3, 6},
		PerTemplate: 15,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %d training queries\n", train.Len())

	// 2. Train the plan-level predictor (nu-SVR over Table-1 features).
	model, err := qperf.TrainPlanLevel(train)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Predict unseen instances of the same templates — the static
	// workload scenario. We execute them only to check the prediction.
	test, err := qperf.BuildWorkload(qperf.WorkloadConfig{
		ScaleFactor: 0.005,
		Templates:   []int{1, 3, 6},
		PerTemplate: 3,
		Seed:        99, // different parameters than training
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n  template   predicted   actual     error")
	for _, q := range test.Queries() {
		pred, err := model.Predict(q)
		if err != nil {
			log.Fatal(err)
		}
		actual := q.Latency()
		fmt.Printf("  Q%-8d %8.3fs %8.3fs %8.1f%%\n",
			q.Template(), pred, actual, 100*abs(pred-actual)/actual)
	}
	mre, _, err := qperf.MeanRelativeError(model, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmean relative error: %.1f%%\n", 100*mre)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
