// Dynamic workload scenario (Section 5.4 of the paper): queries arrive
// from a template never seen in training. Plan-level models collapse;
// operator-level models generalize; the hybrid keeps plan-level accuracy
// where its sub-plan models still apply.
package main

import (
	"fmt"
	"log"

	"qpp"
)

func main() {
	// Train on six templates; template 12 is never seen during training.
	const heldOut = 12
	all, err := qperf.BuildWorkload(qperf.WorkloadConfig{
		ScaleFactor: 0.008,
		Templates:   []int{1, 3, 4, 5, 10, 14, heldOut},
		PerTemplate: 12,
		Seed:        21,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := all.SplitTemplate(heldOut)
	fmt.Printf("training on %d queries from 6 templates; testing on %d unseen Q%d queries\n\n",
		train.Len(), test.Len(), heldOut)

	planLevel, err := qperf.TrainPlanLevel(train)
	if err != nil {
		log.Fatal(err)
	}
	opLevel, err := qperf.TrainOperatorLevel(train)
	if err != nil {
		log.Fatal(err)
	}
	hybrid, err := qperf.TrainHybrid(train, qperf.SizeBased)
	if err != nil {
		log.Fatal(err)
	}
	online, err := qperf.NewOnlinePredictor(train)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("  method                unseen-template MRE")
	for _, p := range []qperf.Predictor{planLevel, opLevel, hybrid, online} {
		mre, _, err := qperf.MeanRelativeError(p, test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %8.1f%%\n", p.Name(), 100*mre)
	}
	fmt.Println("\nExpected shape (paper, Figure 9): plan-level degrades badly on unseen")
	fmt.Println("plans while operator-level, hybrid and online prediction stay accurate.")
}
