// Static workload scenario (Section 5.3 of the paper): when future queries
// come from the same templates as the training workload, compare all the
// methods — the analytical cost baseline, plan-level, and operator-level —
// on a held-out test split.
package main

import (
	"fmt"
	"log"

	"qpp"
)

func main() {
	templates := []int{1, 3, 5, 6, 10, 12, 14}

	train, err := qperf.BuildWorkload(qperf.WorkloadConfig{
		ScaleFactor: 0.008,
		Templates:   templates,
		PerTemplate: 12,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	test, err := qperf.BuildWorkload(qperf.WorkloadConfig{
		ScaleFactor: 0.008,
		Templates:   templates,
		PerTemplate: 4,
		Seed:        1234,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("train=%d queries, test=%d queries, templates=%v\n\n",
		train.Len(), test.Len(), templates)

	type method struct {
		name  string
		train func(*qperf.Workload) (qperf.Predictor, error)
	}
	methods := []method{
		{"optimizer-cost baseline", qperf.TrainCostBaseline},
		{"plan-level (SVR)", qperf.TrainPlanLevel},
		{"operator-level (linreg)", qperf.TrainOperatorLevel},
		{"hybrid (error-based)", func(w *qperf.Workload) (qperf.Predictor, error) {
			return qperf.TrainHybrid(w, qperf.ErrorBased)
		}},
	}
	fmt.Println("  method                      test MRE")
	for _, m := range methods {
		p, err := m.train(train)
		if err != nil {
			log.Fatal(err)
		}
		mre, skipped, err := qperf.MeanRelativeError(p, test)
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if skipped > 0 {
			note = fmt.Sprintf("  (%d queries not applicable)", skipped)
		}
		fmt.Printf("  %-26s %7.1f%%%s\n", m.name, 100*mre, note)
	}
	fmt.Println("\nExpected shape (paper): learned models beat the cost baseline by a wide")
	fmt.Println("margin, and plan-level is the strongest on a fixed, known workload.")
}
