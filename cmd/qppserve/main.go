// Command qppserve is the QPP-as-a-service daemon: it serves latency
// predictions from trained model snapshots over HTTP (see
// internal/serve for the endpoint contract).
//
// Two startup modes:
//
//	qppserve -models models/ -sf 0.01 -seed 42   # load a qpptrain -out dir
//	qppserve -sf 0.01 -per-template 20           # train in-process, then serve
//
// In -models mode the TPC-H database is regenerated deterministically
// from -sf and -seed, which must match the values the snapshot was
// trained with — plan features are scale-dependent, so serving a model
// against a mismatched database silently mispredicts.
//
// POST /reload re-reads the model directory (or retrains with the
// startup config) and atomically swaps the new snapshot in; in-flight
// predictions finish on the old one.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"qpp/internal/qpp"
	"qpp/internal/serve"
	"qpp/internal/storage"
	"qpp/internal/tpch"
)

func parseStrategy(s string) qpp.Strategy {
	switch s {
	case "size":
		return qpp.SizeBased
	case "frequency":
		return qpp.FrequencyBased
	default:
		return qpp.ErrorBased
	}
}

// buildSnapshot resolves the startup mode into a first snapshot, the
// database to plan against, and the /reload source.
func buildSnapshot(models string, cfg serve.TrainConfig) (*serve.Snapshot, *storage.Database, func() (*serve.Snapshot, error), error) {
	if models != "" {
		db, err := tpch.Generate(tpch.GenConfig{ScaleFactor: cfg.ScaleFactor, Seed: cfg.Seed})
		if err != nil {
			return nil, nil, nil, err
		}
		snap, err := serve.LoadSnapshot(models)
		if err != nil {
			return nil, nil, nil, err
		}
		reload := func() (*serve.Snapshot, error) { return serve.LoadSnapshot(models) }
		return snap, db, reload, nil
	}
	snap, db, err := serve.TrainSnapshot(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	reload := func() (*serve.Snapshot, error) {
		next, _, err := serve.TrainSnapshot(cfg)
		return next, err
	}
	return snap, db, reload, nil
}

func main() {
	addr := flag.String("addr", ":8099", "listen address")
	models := flag.String("models", "", "model directory to load (empty: train in-process at startup)")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor (must match training when loading -models)")
	seed := flag.Int64("seed", 42, "generation seed (must match training when loading -models)")
	perTemplate := flag.Int("per-template", 20, "training queries per template (in-process training mode)")
	strategy := flag.String("strategy", "error", "hybrid strategy: error, size, frequency")
	par := flag.Int("parallel", 0, "training workload workers (0 = GOMAXPROCS)")
	flag.Parse()

	cfg := serve.TrainConfig{
		ScaleFactor: *sf,
		PerTemplate: *perTemplate,
		Seed:        *seed,
		Strategy:    parseStrategy(*strategy),
		Parallelism: *par,
	}
	if *models == "" {
		log.Printf("qppserve: training in-process (sf %g, %d per template, seed %d)...", *sf, *perTemplate, *seed)
	}
	snap, db, reload, err := buildSnapshot(*models, cfg)
	if err != nil {
		log.Fatalf("qppserve: %v", err)
	}
	s := serve.New(db, snap, serve.Options{Reload: reload})
	log.Printf("qppserve: serving model %s on %s", snap.Version, *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
