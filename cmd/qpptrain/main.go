// Command qpptrain is the offline model-building pipeline the paper
// describes in Section 1: execute a training workload, train prediction
// models, and materialize them to disk so later predictions need no
// retraining. With -load it restores materialized models and evaluates
// them on a freshly generated test workload.
//
// Usage:
//
//	qpptrain -sf 0.01 -per-template 20 -out models/         # train + save
//	qpptrain -sf 0.01 -load models/ -test-per-template 5    # load + evaluate
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"qpp"
	"qpp/internal/prof"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	perTemplate := flag.Int("per-template", 20, "training queries per template")
	testPerTemplate := flag.Int("test-per-template", 5, "test queries per template (evaluation)")
	seed := flag.Int64("seed", 42, "generation seed")
	out := flag.String("out", "", "directory to materialize trained models into")
	load := flag.String("load", "", "directory to load materialized models from (skips training)")
	strategy := flag.String("strategy", "error", "hybrid strategy: error, size, frequency")
	par := flag.Int("parallel", 0, "worker goroutines for workload execution (0 = GOMAXPROCS, 1 = serial)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	flag.Parse()

	stopCPU, err := prof.StartCPU(*cpuProfile)
	if err != nil {
		log.Fatalf("qpptrain: %v", err)
	}
	defer stopCPU()
	defer func() {
		if err := prof.WriteHeap(*memProfile); err != nil {
			log.Fatalf("qpptrain: %v", err)
		}
	}()

	var strat qperf.HybridStrategy
	switch *strategy {
	case "size":
		strat = qperf.SizeBased
	case "frequency":
		strat = qperf.FrequencyBased
	default:
		strat = qperf.ErrorBased
	}

	var planModel *qperf.PlanLevelModel
	var hybridModel *qperf.HybridModel

	if *load != "" {
		planModel, hybridModel, err = loadModels(*load)
		if err != nil {
			log.Fatalf("qpptrain: %v", err)
		}
		fmt.Printf("loaded materialized models from %s (hybrid carries %d sub-plan models)\n",
			*load, hybridModel.NumPlanModels())
	} else {
		fmt.Printf("executing training workload (SF %v, %d per template)...\n", *sf, *perTemplate)
		train, err := qperf.BuildWorkload(qperf.WorkloadConfig{
			ScaleFactor: *sf,
			Templates:   qperf.OperatorLevelTemplates(),
			PerTemplate: *perTemplate,
			Seed:        *seed,
			Parallelism: *par,
		})
		if err != nil {
			log.Fatalf("qpptrain: %v", err)
		}
		fmt.Printf("training models on %d executed queries...\n", train.Len())
		planModel, err = qperf.TrainPlanLevelModel(train)
		if err != nil {
			log.Fatalf("qpptrain: plan-level: %v", err)
		}
		hybridModel, err = qperf.TrainHybridModel(train, strat)
		if err != nil {
			log.Fatalf("qpptrain: hybrid: %v", err)
		}
		if *out != "" {
			if err := saveModels(*out, planModel, hybridModel); err != nil {
				log.Fatalf("qpptrain: %v", err)
			}
			fmt.Printf("materialized models into %s\n", *out)
		}
	}

	// Evaluate on a fresh workload (different parameters, same templates).
	fmt.Printf("evaluating on a fresh workload (%d per template)...\n", *testPerTemplate)
	test, err := qperf.BuildWorkload(qperf.WorkloadConfig{
		ScaleFactor: *sf,
		Templates:   qperf.OperatorLevelTemplates(),
		PerTemplate: *testPerTemplate,
		Seed:        *seed + 100000,
		Parallelism: *par,
	})
	if err != nil {
		log.Fatalf("qpptrain: %v", err)
	}
	for _, p := range []qperf.Predictor{planModel, hybridModel} {
		mre, skipped, err := qperf.MeanRelativeError(p, test)
		if err != nil {
			log.Fatalf("qpptrain: evaluate %s: %v", p.Name(), err)
		}
		note := ""
		if skipped > 0 {
			note = fmt.Sprintf(" (%d skipped)", skipped)
		}
		fmt.Printf("  %-22s test MRE %.1f%%%s\n", p.Name(), 100*mre, note)
	}
}

func saveModels(dir string, pl *qperf.PlanLevelModel, hy *qperf.HybridModel) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	pf, err := os.Create(filepath.Join(dir, "plan_level.json"))
	if err != nil {
		return err
	}
	defer pf.Close()
	if err := pl.Save(pf); err != nil {
		return err
	}
	hf, err := os.Create(filepath.Join(dir, "hybrid.json"))
	if err != nil {
		return err
	}
	defer hf.Close()
	return hy.Save(hf)
}

func loadModels(dir string) (*qperf.PlanLevelModel, *qperf.HybridModel, error) {
	pf, err := os.Open(filepath.Join(dir, "plan_level.json"))
	if err != nil {
		return nil, nil, err
	}
	defer pf.Close()
	pl, err := qperf.LoadPlanLevelModel(pf)
	if err != nil {
		return nil, nil, err
	}
	hf, err := os.Open(filepath.Join(dir, "hybrid.json"))
	if err != nil {
		return nil, nil, err
	}
	defer hf.Close()
	hy, err := qperf.LoadHybridModel(hf)
	if err != nil {
		return nil, nil, err
	}
	return pl, hy, nil
}
