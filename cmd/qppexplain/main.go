// Command qppexplain plans (and optionally executes) a SQL query against a
// generated TPC-H database and prints its EXPLAIN / EXPLAIN ANALYZE tree,
// exactly the optimizer output the QPP features are extracted from.
//
// Usage:
//
//	qppexplain -sf 0.01 -template 3            # a random Q3 instance
//	qppexplain -sf 0.01 -query 'select ...'    # ad-hoc SQL
//	qppexplain -sf 0.01 -template 5 -analyze   # execute and show actuals
package main

import (
	"flag"
	"fmt"
	"log"

	"qpp"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	seed := flag.Int64("seed", 42, "data/query generation seed")
	template := flag.Int("template", 0, "TPC-H template to instantiate (1-15, 18, 19, 22)")
	query := flag.String("query", "", "ad-hoc SQL (overrides -template)")
	analyze := flag.Bool("analyze", false, "execute the query and show actual times")
	flag.Parse()

	engine, err := qperf.NewEngine(qperf.EngineConfig{ScaleFactor: *sf, Seed: *seed})
	if err != nil {
		log.Fatalf("qppexplain: %v", err)
	}
	sqlText := *query
	if sqlText == "" {
		if *template == 0 {
			log.Fatal("qppexplain: provide -query or -template")
		}
		sqlText, err = qperf.GenerateQuery(*template, *seed)
		if err != nil {
			log.Fatalf("qppexplain: %v", err)
		}
		fmt.Printf("-- TPC-H template %d instance:\n%s\n\n", *template, sqlText)
	}
	if *analyze {
		res, err := engine.Run(sqlText, *seed)
		if err != nil {
			log.Fatalf("qppexplain: %v", err)
		}
		out := qperf.ExplainPlan(res.Plan)
		fmt.Print(out)
		fmt.Printf("\nRows: %d   Virtual execution time: %.4f s\n", len(res.Rows), res.Elapsed)
		return
	}
	out, err := engine.Explain(sqlText)
	if err != nil {
		log.Fatalf("qppexplain: %v", err)
	}
	fmt.Print(out)
}
