// Command qppexplain plans (and optionally executes) a SQL query against a
// generated TPC-H database and prints its EXPLAIN / EXPLAIN ANALYZE tree,
// exactly the optimizer output the QPP features are extracted from.
//
// Usage:
//
//	qppexplain -sf 0.01 -template 3            # a random Q3 instance
//	qppexplain -sf 0.01 -query 'select ...'    # ad-hoc SQL
//	qppexplain -sf 0.01 -template 5 -analyze   # execute and show actuals
//	qppexplain -sf 0.01 -template 5 -trace q5.json  # span trace + Chrome JSON
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"qpp"
	"qpp/internal/obs"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	seed := flag.Int64("seed", 42, "data/query generation seed")
	template := flag.Int("template", 0, "TPC-H template to instantiate (1-15, 18, 19, 22)")
	query := flag.String("query", "", "ad-hoc SQL (overrides -template)")
	analyze := flag.Bool("analyze", false, "execute the query and show actual times")
	traceOut := flag.String("trace", "", "execute with span tracing (implies -analyze), print the trace tree and write Chrome trace_event JSON to this file")
	flag.Parse()

	engine, err := qperf.NewEngine(qperf.EngineConfig{ScaleFactor: *sf, Seed: *seed})
	if err != nil {
		log.Fatalf("qppexplain: %v", err)
	}
	sqlText := *query
	if sqlText == "" {
		if *template == 0 {
			log.Fatal("qppexplain: provide -query or -template")
		}
		sqlText, err = qperf.GenerateQuery(*template, *seed)
		if err != nil {
			log.Fatalf("qppexplain: %v", err)
		}
		fmt.Printf("-- TPC-H template %d instance:\n%s\n\n", *template, sqlText)
	}
	if *traceOut != "" {
		res, tr, err := engine.RunTraced(sqlText, *seed)
		if err != nil {
			log.Fatalf("qppexplain: %v", err)
		}
		fmt.Print(qperf.ExplainPlan(res.Plan))
		fmt.Printf("\nRows: %d   Virtual execution time: %.4f s\n", len(res.Rows), res.Elapsed)
		fmt.Printf("\n-- execution trace:\n%s", tr.Tree())
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("qppexplain: %v", err)
		}
		if err := obs.WriteChrome(f, []*obs.Trace{tr}, []string{sqlText}); err != nil {
			f.Close()
			log.Fatalf("qppexplain: write trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("qppexplain: write trace: %v", err)
		}
		fmt.Printf("\nwrote Chrome trace to %s\n", *traceOut)
		return
	}
	if *analyze {
		res, err := engine.Run(sqlText, *seed)
		if err != nil {
			log.Fatalf("qppexplain: %v", err)
		}
		out := qperf.ExplainPlan(res.Plan)
		fmt.Print(out)
		fmt.Printf("\nRows: %d   Virtual execution time: %.4f s\n", len(res.Rows), res.Elapsed)
		return
	}
	out, err := engine.Explain(sqlText)
	if err != nil {
		log.Fatalf("qppexplain: %v", err)
	}
	fmt.Print(out)
}
