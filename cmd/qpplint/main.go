// Command qpplint runs the repository's static-analysis rules
// (internal/analysis) over the module and prints findings as
//
//	file:line: [rule] message
//
// It is built on the standard library's go/parser + go/types only, so
// it needs no tool dependencies and runs anywhere the repo builds.
//
// Usage:
//
//	qpplint                      # lint the whole module (same as ./...)
//	qpplint ./...                # ditto
//	qpplint ./internal/qpp ./internal/mlearn
//	qpplint -rules lockstate,hotalloc ./...   # only these rules
//	qpplint -rules -nondeterminism ./...      # everything but this rule
//	qpplint -json ./... > LINT.json           # machine-readable report
//	qpplint -list                # describe the registered rules
//
// Exit status: 0 when clean, 1 when findings were reported, 2 when the
// module failed to load or type-check (or the flags were invalid).
//
// Suppress an individual finding with a `//qpplint:ignore <rule>`
// comment on the offending line or the line above it; the comment should
// say why the invariant does not apply. On full runs, an ignore comment
// that suppresses nothing is itself reported (rule unusedignore).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"qpp/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "describe the registered rules and exit")
	asJSON := flag.Bool("json", false, "emit the findings as a JSON report on stdout")
	ruleSpec := flag.String("rules", "", "comma-separated rules to run; prefix a name with '-' to exclude it instead")
	flag.Parse()

	if *list {
		for _, r := range analysis.Rules() {
			fmt.Printf("%-16s %s\n", r.Name, r.Doc)
		}
		return
	}

	rules, err := resolveRules(*ruleSpec)
	if err != nil {
		fatal(err)
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected := selectPackages(pkgs, patterns, root)
	if len(selected) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}

	hardErr := false
	for _, pkg := range selected {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "qpplint: %s: %v\n", pkg.Path, terr)
			hardErr = true
		}
	}
	if hardErr {
		os.Exit(2)
	}

	// The module always includes every loaded package so interprocedural
	// summaries (call chains, lock orders) see the whole call graph even
	// when reporting is restricted to the selected packages.
	mod := analysis.NewModule(pkgs)
	var findings []analysis.Finding
	for _, pkg := range selected {
		findings = append(findings, mod.Check(pkg, rules)...)
	}

	report := analysis.NewReport(root, rules, findings)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			rel := f
			if r, err := filepath.Rel(root, f.Pos.Filename); err == nil {
				rel.Pos.Filename = r
			}
			fmt.Println(rel)
		}
	}
	fmt.Fprintf(os.Stderr, "qpplint: %s\n", report.Summary())
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qpplint: %v\n", err)
	os.Exit(2)
}

// resolveRules parses the -rules flag: a comma-separated list of rule
// names selects exactly those; names prefixed with '-' run everything
// except them. Mixing both forms or naming an unknown rule is an error.
// An empty spec returns nil, meaning the full registry.
func resolveRules(spec string) ([]analysis.Rule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	byName := map[string]analysis.Rule{}
	for _, r := range analysis.Rules() {
		byName[r.Name] = r
	}
	include := map[string]bool{}
	exclude := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		neg := strings.HasPrefix(name, "-")
		name = strings.TrimPrefix(name, "-")
		if _, ok := byName[name]; !ok {
			return nil, fmt.Errorf("unknown rule %q (use -list to see the registry)", name)
		}
		if neg {
			exclude[name] = true
		} else {
			include[name] = true
		}
	}
	if len(include) > 0 && len(exclude) > 0 {
		return nil, fmt.Errorf("-rules cannot mix selections and '-' exclusions")
	}
	var out []analysis.Rule
	for _, r := range analysis.Rules() {
		if len(include) > 0 && !include[r.Name] {
			continue
		}
		if exclude[r.Name] {
			continue
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-rules %q excludes every registered rule", spec)
	}
	return out, nil
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// selectPackages filters loaded packages by go-style patterns: `./...`,
// `./internal/qpp`, a bare import path, or a `path/...` wildcard.
// External test packages follow their base package's pattern match.
func selectPackages(pkgs []*analysis.Package, patterns []string, root string) []*analysis.Package {
	var out []*analysis.Package
	for _, pkg := range pkgs {
		rel, err := filepath.Rel(root, pkg.Dir)
		if err != nil {
			continue
		}
		rel = filepath.ToSlash(rel)
		base := strings.TrimSuffix(pkg.Path, ".test")
		for _, pat := range patterns {
			if matchPattern(pat, rel, base) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

func matchPattern(pat, rel, importPath string) bool {
	pat = strings.TrimPrefix(pat, "./")
	if pat == "..." {
		return true
	}
	if pat == "." || pat == "" {
		return rel == "."
	}
	if wild, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == wild || strings.HasPrefix(rel, wild+"/") ||
			importPath == wild || strings.HasPrefix(importPath, wild+"/")
	}
	return rel == pat || importPath == pat
}
