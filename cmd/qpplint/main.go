// Command qpplint runs the repository's static-analysis rules
// (internal/analysis) over the module and prints findings as
//
//	file:line: [rule] message
//
// exiting non-zero when anything is found. It is built on the standard
// library's go/parser + go/types only, so it needs no tool dependencies
// and runs anywhere the repo builds.
//
// Usage:
//
//	qpplint            # lint the whole module (same as ./...)
//	qpplint ./...      # ditto
//	qpplint ./internal/qpp ./internal/mlearn
//	qpplint -list      # describe the registered rules
//
// Suppress an individual finding with a `//qpplint:ignore <rule>`
// comment on the offending line or the line above it; the comment should
// say why the invariant does not apply.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"qpp/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "describe the registered rules and exit")
	flag.Parse()

	if *list {
		for _, r := range analysis.Rules() {
			fmt.Printf("%-16s %s\n", r.Name, r.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected := selectPackages(pkgs, patterns, root)
	if len(selected) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}

	hardErr := false
	for _, pkg := range selected {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "qpplint: %s: %v\n", pkg.Path, terr)
			hardErr = true
		}
	}
	if hardErr {
		os.Exit(2)
	}

	findings := analysis.CheckAll(selected)
	for _, f := range findings {
		rel := f
		if r, err := filepath.Rel(root, f.Pos.Filename); err == nil {
			rel.Pos.Filename = r
		}
		fmt.Println(rel)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "qpplint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qpplint: %v\n", err)
	os.Exit(2)
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// selectPackages filters loaded packages by go-style patterns: `./...`,
// `./internal/qpp`, a bare import path, or a `path/...` wildcard.
// External test packages follow their base package's pattern match.
func selectPackages(pkgs []*analysis.Package, patterns []string, root string) []*analysis.Package {
	var out []*analysis.Package
	for _, pkg := range pkgs {
		rel, err := filepath.Rel(root, pkg.Dir)
		if err != nil {
			continue
		}
		rel = filepath.ToSlash(rel)
		base := strings.TrimSuffix(pkg.Path, ".test")
		for _, pat := range patterns {
			if matchPattern(pat, rel, base) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

func matchPattern(pat, rel, importPath string) bool {
	pat = strings.TrimPrefix(pat, "./")
	if pat == "..." {
		return true
	}
	if pat == "." || pat == "" {
		return rel == "."
	}
	if wild, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == wild || strings.HasPrefix(rel, wild+"/") ||
			importPath == wild || strings.HasPrefix(importPath, wild+"/")
	}
	return rel == pat || importPath == pat
}
