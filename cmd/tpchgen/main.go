// Command tpchgen generates TPC-H tables at a given scale factor and
// writes them as CSV files (one per table), like the benchmark's dbgen.
//
// Usage:
//
//	tpchgen -sf 0.01 -seed 42 -out ./data
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"qpp/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor (1.0 = ~1 GB)")
	seed := flag.Int64("seed", 42, "generation seed")
	out := flag.String("out", ".", "output directory")
	tables := flag.String("tables", "", "comma-free list is not supported; empty = all tables, or one table name")
	flag.Parse()

	db, err := tpch.Generate(tpch.GenConfig{ScaleFactor: *sf, Seed: *seed})
	if err != nil {
		log.Fatalf("tpchgen: %v", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("tpchgen: %v", err)
	}
	names := db.Schema.TableNames()
	if *tables != "" {
		names = []string{*tables}
	}
	for _, name := range names {
		t, ok := db.Table(name)
		if !ok {
			log.Fatalf("tpchgen: unknown table %q", name)
		}
		path := filepath.Join(*out, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("tpchgen: %v", err)
		}
		w := csv.NewWriter(f)
		header := make([]string, len(t.Meta.Columns))
		for i, c := range t.Meta.Columns {
			header[i] = c.Name
		}
		if err := w.Write(header); err != nil {
			log.Fatalf("tpchgen: %v", err)
		}
		row := make([]string, len(header))
		for _, r := range t.Rows {
			for i, v := range r {
				row[i] = v.String()
			}
			if err := w.Write(row); err != nil {
				log.Fatalf("tpchgen: %v", err)
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			log.Fatalf("tpchgen: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("tpchgen: %v", err)
		}
		fmt.Printf("%-10s %8d rows -> %s\n", name, len(t.Rows), path)
	}
}
