// Command qppexp regenerates the paper's evaluation: it builds the two
// TPC-H workloads (the paper's 10 GB / 1 GB pair, scaled), runs the chosen
// experiments, and prints the corresponding tables — one section per
// figure of the paper.
//
// Query execution, cross-validation folds, and the figure drivers
// themselves all run across a worker pool; results are bit-identical for
// every worker count, so -parallel only changes wall-clock time.
//
// Usage:
//
//	qppexp                        # all experiments at full reproduction scale
//	qppexp -exp fig5,fig6         # a subset
//	qppexp -quick                 # reduced scale for a fast smoke run
//	qppexp -per-template 20       # override workload size
//	qppexp -parallel 8            # worker count (default GOMAXPROCS)
//	qppexp -quick -metrics -      # dump the merged metrics registry to stdout
//	qppexp -quick -trace t.json   # Chrome trace of every executed query
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"qpp/internal/experiments"
	"qpp/internal/obs"
	"qpp/internal/parallel"
	"qpp/internal/prof"
	"qpp/internal/workload"
)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiments: fig4,fig5,fig6,fig7,fig8,fig9,esterr")
	quick := flag.Bool("quick", false, "reduced scale for a fast run")
	largeSF := flag.Float64("large-sf", 0, "override large scale factor")
	smallSF := flag.Float64("small-sf", 0, "override small scale factor")
	perTemplate := flag.Int("per-template", 0, "override queries per template")
	seed := flag.Int64("seed", 0, "override seed")
	par := flag.Int("parallel", 0, "worker goroutines for execution and training (0 = GOMAXPROCS, 1 = serial)")
	metricsOut := flag.String("metrics", "", "enable the obs layer and write the merged metrics registry dump to this file ('-' = stdout)")
	traceOut := flag.String("trace", "", "enable the obs layer and write a Chrome trace_event JSON of every executed query to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	flag.Parse()

	stopCPU, err := prof.StartCPU(*cpuProfile)
	if err != nil {
		log.Fatalf("qppexp: %v", err)
	}
	defer stopCPU()
	defer func() {
		if err := prof.WriteHeap(*memProfile); err != nil {
			log.Fatalf("qppexp: %v", err)
		}
	}()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *largeSF > 0 {
		cfg.LargeSF = *largeSF
	}
	if *smallSF > 0 {
		cfg.SmallSF = *smallSF
	}
	if *perTemplate > 0 {
		cfg.PerTemplate = *perTemplate
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Parallelism = *par
	cfg.Observe = *metricsOut != "" || *traceOut != ""

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	fmt.Printf("# Learning-based QPP reproduction — experiment run\n")
	fmt.Printf("# large SF=%v small SF=%v per-template=%d seed=%d folds=%d workers=%d\n\n",
		cfg.LargeSF, cfg.SmallSF, cfg.PerTemplate, cfg.Seed, cfg.Folds,
		parallel.DefaultWorkers(cfg.Parallelism))

	t0 := time.Now()
	env, err := experiments.BuildEnv(cfg)
	if err != nil {
		log.Fatalf("qppexp: %v", err)
	}
	fmt.Printf("built workloads in %v: large=%d queries (timeouts %v), small=%d queries (timeouts %v)\n\n",
		time.Since(t0).Round(time.Millisecond),
		len(env.Large.Records), env.Large.TimedOut,
		len(env.Small.Records), env.Small.TimedOut)

	// The figure drivers are independent of each other: run them
	// concurrently, buffering each section, then print in a fixed order so
	// the report reads identically regardless of completion order. Each
	// driver hands back its result's metrics registry (nil unless the obs
	// layer is on); registries merge serially in driver order below.
	type driver struct {
		name string
		fn   func(*experiments.Env, io.Writer) (*obs.Registry, error)
	}
	drivers := []driver{
		{"fig5", runFig5},
		{"fig6", runFig6},
		{"fig7", runFig7},
		{"fig8", runFig8},
		{"fig9", runFig9},
		{"fig4", runFig4},
		{"esterr", runEstErr},
	}
	var selected []driver
	for _, d := range drivers {
		if all || want[d.name] {
			selected = append(selected, d)
		}
	}
	outputs := make([]bytes.Buffer, len(selected))
	regs := make([]*obs.Registry, len(selected))
	elapsed := make([]time.Duration, len(selected))
	err = parallel.ForEach(len(selected), cfg.Parallelism, func(i int) error {
		start := time.Now()
		reg, err := selected[i].fn(env, &outputs[i])
		if err != nil {
			return fmt.Errorf("%s: %w", selected[i].name, err)
		}
		regs[i] = reg
		elapsed[i] = time.Since(start)
		return nil
	})
	if err != nil {
		log.Fatalf("qppexp: %v", err)
	}
	for i, d := range selected {
		io.Copy(os.Stdout, &outputs[i])
		fmt.Printf("(%s completed in %v)\n\n", d.name, elapsed[i].Round(time.Millisecond))
	}

	if *metricsOut != "" {
		merged := obs.NewRegistry()
		merged.MergePrefixed(env.Large.Metrics, "large.")
		merged.MergePrefixed(env.Small.Metrics, "small.")
		for _, reg := range regs {
			if reg != nil {
				merged.Merge(reg)
			}
		}
		if err := writeMetrics(*metricsOut, merged); err != nil {
			log.Fatalf("qppexp: %v", err)
		}
	}
	if *traceOut != "" {
		if err := writeTraces(*traceOut, env); err != nil {
			log.Fatalf("qppexp: %v", err)
		}
		fmt.Printf("wrote Chrome trace to %s\n", *traceOut)
	}
}

// writeMetrics dumps the merged registry to a file or stdout.
func writeMetrics(path string, reg *obs.Registry) error {
	if path == "-" {
		fmt.Println("## Metrics registry")
		_, err := reg.WriteTo(os.Stdout)
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := reg.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTraces exports every executed query's span trace as one Chrome
// trace_event process, large dataset first, in workload order.
func writeTraces(path string, env *experiments.Env) error {
	var traces []*obs.Trace
	var labels []string
	add := func(scale string, ds *workload.Dataset) {
		for i, tr := range ds.Traces {
			traces = append(traces, tr)
			labels = append(labels, fmt.Sprintf("%s t%d #%d", scale, ds.Records[i].Template, i))
		}
	}
	add("large", env.Large)
	add("small", env.Small)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChrome(f, traces, labels); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

func runFig5(env *experiments.Env, w io.Writer) (*obs.Registry, error) {
	res, err := experiments.Fig5(env)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "## Figure 5 / Section 5.2 — Prediction with the optimizer cost model")
	fmt.Fprintf(w, "least-squares fit: time = %.3g * cost + %.3g\n", res.Slope, res.Intercept)
	fmt.Fprintf(w, "relative error: min=%s mean=%s max=%s   (paper: 30%% / 120%% / 1744%%)\n",
		pct(res.MinRel), pct(res.MeanRel), pct(res.MaxRel))
	fmt.Fprintf(w, "predictive risk: %.3f   (paper: ~0.93 — deceptively high)\n", res.PredictiveRisk)
	fmt.Fprintf(w, "scatter: %d (cost, time) points; sample:\n", len(res.Points))
	for i := 0; i < len(res.Points) && i < 5; i++ {
		p := res.Points[i]
		fmt.Fprintf(w, "  T%-2d cost=%12.1f time=%8.3fs\n", p.Template, p.Cost, p.Time)
	}
	return res.Metrics, nil
}

func templateTable(errs []experiments.TemplateError) string {
	var sb strings.Builder
	for _, e := range errs {
		fmt.Fprintf(&sb, "  T%-3d %8s  (n=%d)\n", e.Template, pct(e.Error), e.N)
	}
	return sb.String()
}

func runFig6(env *experiments.Env, w io.Writer) (*obs.Registry, error) {
	res, err := experiments.Fig6(env)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "## Figure 6 / Section 5.3 — Static workload prediction")
	fmt.Fprintf(w, "### 6(a) Plan-level, large DB — mean %s (paper 6.75%%)\n%s",
		pct(res.PlanLargeMean), templateTable(res.PlanLarge))
	fmt.Fprintf(w, "### 6(c) Plan-level, small DB — mean %s (paper 17.43%%)\n%s",
		pct(res.PlanSmallMean), templateTable(res.PlanSmall))
	fmt.Fprintf(w, "### 6(d) Operator-level, large DB — mean %s over 14 (paper 53.9%%); best %d templates %s (paper: 11 at 7.3%%)\n%s",
		pct(res.OpLargeMean), res.OpLargeBestN, pct(res.OpLargeBestMean), templateTable(res.OpLarge))
	fmt.Fprintf(w, "### 6(f) Operator-level, small DB — mean %s over 14 (paper 59.6%%); best %d templates %s (paper: 8 at 16.45%%)\n%s",
		pct(res.OpSmallMean), res.OpSmallBestN, pct(res.OpSmallBestMean), templateTable(res.OpSmall))
	fmt.Fprintf(w, "### 6(b)/(e) scatter sizes: plan=%d points, op=%d points\n",
		len(res.PlanLargeScatter), len(res.OpLargeScatter))
	return res.Metrics, nil
}

func runFig7(env *experiments.Env, w io.Writer) (*obs.Registry, error) {
	res, err := experiments.Fig7(env)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "## Figure 7 / Section 5.3.3 — Actual vs estimated feature values (large DB)")
	fmt.Fprintln(w, "  train/test        plan-level   operator-level")
	for _, c := range res.Combos {
		fmt.Fprintf(w, "  %-8s/%-9s %10s %14s\n", c.Train, c.Test, pct(c.PlanErr), pct(c.OpErr))
	}
	fmt.Fprintf(w, "### 7(b) Plan-level actual/actual by template\n%s", templateTable(res.PlanActualByTemplate))
	return res.Metrics, nil
}

func runFig8(env *experiments.Env, w io.Writer) (*obs.Registry, error) {
	res, err := experiments.Fig8(env)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "## Figure 8 / Section 5.3.4 — Hybrid plan-ordering strategies (held-out error vs iteration)")
	names := make([]string, 0, len(res.Curves))
	for n := range res.Curves {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		curve := res.Curves[name]
		fmt.Fprintf(w, "  %-16s models=%d: ", name, res.ModelsAccepted[name])
		for _, p := range curve {
			fmt.Fprintf(w, "%d:%s ", p.Iter, pct(p.Error))
		}
		fmt.Fprintln(w)
	}
	return res.Metrics, nil
}

func runFig9(env *experiments.Env, w io.Writer) (*obs.Registry, error) {
	res, err := experiments.Fig9(env)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "## Figure 9 / Section 5.4 — Dynamic workload (leave one template out)")
	fmt.Fprintln(w, "  tmpl   plan-level   op-level   error-based   size-based   online")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "  T%-3d %10s %10s %12s %12s %9s\n", r.Template,
			pct(r.PlanLevel), pct(r.OpLevel), pct(r.ErrorBased), pct(r.SizeBased), pct(r.Online))
	}
	fmt.Fprintf(w, "  mean %10s %10s %12s %12s %9s\n",
		pct(res.PlanMean), pct(res.OpMean), pct(res.ErrMean), pct(res.SizeMean), pct(res.OnlineMean))
	return res.Metrics, nil
}

func runEstErr(env *experiments.Env, w io.Writer) (*obs.Registry, error) {
	res, err := experiments.FigEst(env)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "## Cardinality feedback — per-operator q-error, optimizer estimates vs feedback-corrected (small DB)")
	fmt.Fprintln(w, "  tmpl   qerr off   qerr on   operators")
	for _, r := range res.Templates {
		fmt.Fprintf(w, "  T%-4d %9.3f %9.3f %8d\n", r.Template, r.QErrOff, r.QErrOn, r.N)
	}
	fmt.Fprintf(w, "  overall geometric-mean q-error: %.3f -> %.3f\n", res.OverallOff, res.OverallOn)
	return res.Metrics, nil
}

func runFig4(env *experiments.Env, w io.Writer) (*obs.Registry, error) {
	res, err := experiments.Fig4(env)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "## Figure 4 / Section 4 — Common sub-plan analysis (14 templates, large DB)")
	fmt.Fprintln(w, "### 4(a) CDF of common sub-plan sizes")
	for _, p := range res.SizeCDF {
		fmt.Fprintf(w, "  size<=%-3d F=%.2f\n", p.Size, p.F)
	}
	fmt.Fprintln(w, "### 4(b) Most common sub-plans")
	for _, s := range res.TopSubplans {
		sig := s.Signature
		if len(sig) > 90 {
			sig = sig[:90] + "…"
		}
		fmt.Fprintf(w, "  %4d occurrences in %2d templates (size %d): %s\n", s.Occurrences, s.Templates, s.Size, sig)
	}
	fmt.Fprintln(w, "### 4(c) Templates sharing common sub-plans")
	for _, s := range res.Sharing {
		fmt.Fprintf(w, "  T%-3d shares with %d other templates\n", s.Template, s.SharesWith)
	}
	return res.Metrics, nil
}
