// Command qppcachebench measures what the parametric plan cache buys on
// the serving hot path and writes the trajectory to BENCH_plancache.json.
//
// Two experiments over all TPC-H templates:
//
//  1. Optimization time: wall-clock per-request planning cost on three
//     paths — cold (parse + full DP join ordering), exact-match hit
//     (query text seen in training: memo lookup), and parametric rebind
//     (known template, unseen binding: signature lookup + clone +
//     literal stamp + trace replay) — per template and aggregate. The
//     PR gate is an aggregate cache-hit speedup >= 10x versus cold.
//
//  2. Plan quality: for parameter draws the cache never trained on,
//     execute the cache-chosen plan and the optimizer's cold plan under
//     the same virtual clock. The gate is zero correctness divergence
//     (identical result rows) and cache virtual latency no worse than
//     the optimizer on >= 90% of draws.
//
//     qppcachebench                        # defaults, writes BENCH_plancache.json
//     qppcachebench -sf 0.005 -eval 8      # more eval draws
//
// The baseline block in the output freezes the no-cache (cold) planning
// figures recorded the day the cache landed, so later regenerations on
// faster machines never silently move the speedup denominator.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"time"

	"qpp/internal/exec"
	"qpp/internal/opt"
	"qpp/internal/plan"
	"qpp/internal/plancache"
	"qpp/internal/tpch"
	"qpp/internal/vclock"

	"math/rand"
)

// frozenColdUS is the aggregate cold-planning cost (µs per request,
// summed over one draw of every template) measured on the reference box
// the day the plan cache landed — the frozen no-cache baseline.
const frozenColdUS = 6429.4

type templateResult struct {
	Template      int     `json:"template"`
	Candidates    int     `json:"candidates"`
	Selector      bool    `json:"selector"`
	ColdUS        float64 `json:"cold_plan_us"`
	HitUS         float64 `json:"hit_plan_us"`
	RebindUS      float64 `json:"rebind_plan_us"`
	Speedup       float64 `json:"speedup"`
	RebindSpeedup float64 `json:"rebind_speedup"`
	Draws         int     `json:"draws"`
	Wins          int     `json:"latency_wins"`
	Divergences   int     `json:"divergences"`
	CacheLatency  float64 `json:"cache_virtual_latency_sec"`
	ColdLatency   float64 `json:"optimizer_virtual_latency_sec"`
	MissedLookups int     `json:"missed_lookups"`
}

type aggregate struct {
	ColdUS         float64 `json:"cold_plan_us"`
	HitUS          float64 `json:"hit_plan_us"`
	RebindUS       float64 `json:"rebind_plan_us"`
	Speedup        float64 `json:"speedup"`
	RebindSpeedup  float64 `json:"rebind_speedup"`
	FrozenColdUS   float64 `json:"frozen_baseline_cold_plan_us"`
	FrozenSpeedup  float64 `json:"frozen_baseline_speedup"`
	Draws          int     `json:"draws"`
	Wins           int     `json:"latency_wins"`
	WinRate        float64 `json:"win_rate"`
	Divergences    int     `json:"divergences"`
	SpeedupGate    bool    `json:"speedup_gate_10x"`
	WinRateGate    bool    `json:"win_rate_gate_90pct"`
	CorrectnessOK  bool    `json:"zero_divergence"`
	TemplatesTotal int     `json:"templates"`
}

type report struct {
	Go        string           `json:"go"`
	GOOS      string           `json:"goos"`
	GOARCH    string           `json:"goarch"`
	SF        float64          `json:"scale_factor"`
	Seed      int64            `json:"seed"`
	Train     int              `json:"train_draws_per_template"`
	Eval      int              `json:"eval_draws_per_template"`
	Templates []templateResult `json:"templates"`
	Aggregate aggregate        `json:"aggregate"`
}

func genSQL(tmpl int, seed int64) (string, error) {
	gq, err := tpch.GenQuery(tmpl, rand.New(rand.NewSource(seed)))
	if err != nil {
		return "", err
	}
	return gq.SQL, nil
}

// timePlanning returns the mean wall-clock µs of fn over the queries,
// repeated until the total exceeds ~40ms so fast paths still get a
// stable figure.
func timePlanning(queries []string, fn func(string) error) (float64, error) {
	reps := 0
	var elapsed time.Duration
	for elapsed < 40*time.Millisecond {
		start := time.Now()
		for _, q := range queries {
			if err := fn(q); err != nil {
				return 0, err
			}
		}
		elapsed += time.Since(start)
		reps++
	}
	return float64(elapsed.Microseconds()) / float64(reps) / float64(len(queries)), nil
}

func sameRows(a, b []plan.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func run() error {
	sf := flag.Float64("sf", 0.005, "TPC-H scale factor")
	seed := flag.Int64("seed", 42, "data generation seed")
	train := flag.Int("train", 5, "training draws per template")
	eval := flag.Int("eval", 6, "held-out evaluation draws per template")
	out := flag.String("out", "BENCH_plancache.json", "output path")
	flag.Parse()

	log.Printf("qppcachebench: generating TPC-H at SF %g (seed %d)...", *sf, *seed)
	db, err := tpch.Generate(tpch.GenConfig{ScaleFactor: *sf, Seed: *seed})
	if err != nil {
		return err
	}

	var trainSQL []string
	trainByTmpl := make(map[int][]string, len(tpch.Templates))
	for _, tmpl := range tpch.Templates {
		for d := 0; d < *train; d++ {
			q, err := genSQL(tmpl, 1000+int64(d))
			if err != nil {
				return err
			}
			trainSQL = append(trainSQL, q)
			trainByTmpl[tmpl] = append(trainByTmpl[tmpl], q)
		}
	}
	log.Printf("qppcachebench: building cache from %d training draws...", len(trainSQL))
	buildStart := time.Now()
	cache, err := plancache.Build(db, trainSQL, plancache.Config{LabelSeed: *seed})
	if err != nil {
		return err
	}
	log.Printf("qppcachebench: %d templates cached in %v", cache.Len(), time.Since(buildStart).Round(time.Millisecond))

	rep := report{
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		SF:     *sf,
		Seed:   *seed,
		Train:  *train,
		Eval:   *eval,
	}
	prof := vclock.DefaultProfile()
	var agg aggregate
	for ti, tmpl := range tpch.Templates {
		evalSQL := make([]string, *eval)
		for d := 0; d < *eval; d++ {
			if evalSQL[d], err = genSQL(tmpl, 5000+int64(d)); err != nil {
				return err
			}
		}
		sig, _, err := plancache.Canonicalize(evalSQL[0])
		if err != nil {
			return err
		}
		tpl := cache.Template(sig)
		if tpl == nil {
			return fmt.Errorf("template %d missing from cache", tmpl)
		}
		tr := templateResult{Template: tmpl, Candidates: len(tpl.Candidates), Selector: tpl.HasSelector()}

		tr.ColdUS, err = timePlanning(evalSQL, func(q string) error {
			_, err := opt.PlanSQL(db, q)
			return err
		})
		if err != nil {
			return err
		}
		// Cache hits: repeats of query texts the server has seen, served
		// from the exact-match memo.
		tr.HitUS, err = timePlanning(trainByTmpl[tmpl], func(q string) error {
			_, outcome, err := cache.Plan(q)
			if err == nil && outcome == plancache.OutcomeMiss {
				tr.MissedLookups++
			}
			return err
		})
		if err != nil {
			return err
		}
		// Parametric rebinds: known template, never-seen bindings.
		tr.RebindUS, err = timePlanning(evalSQL, func(q string) error {
			_, outcome, err := cache.Plan(q)
			if err == nil && outcome == plancache.OutcomeMiss {
				tr.MissedLookups++
			}
			return err
		})
		if err != nil {
			return err
		}
		tr.Speedup = tr.ColdUS / tr.HitUS
		tr.RebindSpeedup = tr.ColdUS / tr.RebindUS

		for d, q := range evalSQL {
			cached, outcome, err := cache.Plan(q)
			if err != nil {
				return err
			}
			if outcome == plancache.OutcomeMiss {
				continue // already counted; nothing cached to compare
			}
			cold, err := opt.PlanSQL(db, q)
			if err != nil {
				return err
			}
			clockSeed := int64(ti*1000 + d)
			rc, err := exec.Run(db, cached, vclock.NewClock(prof, clockSeed), exec.Options{})
			if err != nil {
				return err
			}
			rf, err := exec.Run(db, cold, vclock.NewClock(prof, clockSeed), exec.Options{})
			if err != nil {
				return err
			}
			tr.Draws++
			tr.CacheLatency += rc.Elapsed
			tr.ColdLatency += rf.Elapsed
			if !sameRows(rc.Rows, rf.Rows) {
				tr.Divergences++
			}
			if rc.Elapsed <= rf.Elapsed*(1+1e-9) {
				tr.Wins++
			}
		}
		rep.Templates = append(rep.Templates, tr)
		agg.ColdUS += tr.ColdUS
		agg.HitUS += tr.HitUS
		agg.RebindUS += tr.RebindUS
		agg.Draws += tr.Draws
		agg.Wins += tr.Wins
		agg.Divergences += tr.Divergences
		log.Printf("  q%-2d cold %8.1fus  hit %6.2fus  rebind %7.1fus  %7.1fx/%.1fx  cands %d  wins %d/%d",
			tmpl, tr.ColdUS, tr.HitUS, tr.RebindUS, tr.Speedup, tr.RebindSpeedup, tr.Candidates, tr.Wins, tr.Draws)
	}
	agg.Speedup = agg.ColdUS / agg.HitUS
	agg.RebindSpeedup = agg.ColdUS / agg.RebindUS
	agg.FrozenColdUS = frozenColdUS
	agg.FrozenSpeedup = frozenColdUS / agg.HitUS
	agg.WinRate = float64(agg.Wins) / math.Max(float64(agg.Draws), 1)
	agg.SpeedupGate = agg.Speedup >= 10
	agg.WinRateGate = agg.WinRate >= 0.9
	agg.CorrectnessOK = agg.Divergences == 0
	agg.TemplatesTotal = len(rep.Templates)
	rep.Aggregate = agg

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("qppcachebench: aggregate %.1fus cold vs %.2fus hit (%.0fx) vs %.1fus rebind (%.1fx), win rate %.1f%%, %d divergences -> %s",
		agg.ColdUS, agg.HitUS, agg.Speedup, agg.RebindUS, agg.RebindSpeedup, 100*agg.WinRate, agg.Divergences, *out)
	if !agg.SpeedupGate {
		return fmt.Errorf("speedup gate failed: %.2fx < 10x", agg.Speedup)
	}
	if !agg.WinRateGate {
		return fmt.Errorf("win-rate gate failed: %.1f%% < 90%%", 100*agg.WinRate)
	}
	if !agg.CorrectnessOK {
		return fmt.Errorf("correctness gate failed: %d divergences", agg.Divergences)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		log.Fatalf("qppcachebench: %v", err)
	}
}
