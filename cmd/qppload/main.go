// Command qppload is the deterministic load generator for qppserve: it
// drives POST /predict with a fixed TPC-H query mix at one or more
// concurrency levels and reports p50/p99/mean/max latency and
// throughput per level as JSON (scripts/bench.sh writes it to
// BENCH_serve.json).
//
//	qppload -addr http://127.0.0.1:8099 -levels 2,8 -n 400 -out BENCH_serve.json
//
// The query mix is generated from -templates and -seed, so two runs
// against the same server issue byte-identical request streams.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"qpp/internal/serve"
	"qpp/internal/tpch"
)

// Report is the qppload output document.
type Report struct {
	Go               string             `json:"go"`
	Addr             string             `json:"addr"`
	ModelVersion     string             `json:"model_version"`
	RequestsPerLevel int                `json:"requests_per_level"`
	Templates        []int              `json:"templates"`
	Seed             int64              `json:"seed"`
	Levels           []serve.LevelStats `json:"levels"`
}

func parseInts(csv string) ([]int, error) {
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", csv, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// waitHealthy polls GET /healthz until the server answers 200 and
// returns the reported model version.
func waitHealthy(client *http.Client, addr string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	url := addr + "/healthz"
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := client.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				var h struct {
					ModelVersion string `json:"model_version"`
				}
				if jerr := json.Unmarshal(body, &h); jerr == nil {
					return h.ModelVersion, nil
				}
			}
			lastErr = fmt.Errorf("healthz: status %d", resp.StatusCode)
		} else {
			lastErr = err
		}
		time.Sleep(100 * time.Millisecond)
	}
	return "", fmt.Errorf("server not healthy after %s: %w", timeout, lastErr)
}

// runLevel fires n requests at the given concurrency and returns the
// level's statistics. The bodies slice is the precomputed request
// stream; workers pull indexes from one channel so the total request
// count is exact regardless of scheduling.
func runLevel(client *http.Client, url string, bodies [][]byte, concurrency int) serve.LevelStats {
	jobs := make(chan int, len(bodies))
	for i := range bodies {
		jobs <- i
	}
	close(jobs)

	latencies := make([][]float64, concurrency)
	errCounts := make([]int, concurrency)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				start := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					errCounts[w]++
					continue
				}
				_, cerr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if cerr != nil || resp.StatusCode != http.StatusOK {
					errCounts[w]++
					continue
				}
				latencies[w] = append(latencies[w], time.Since(start).Seconds())
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(t0).Seconds()

	var all []float64
	errs := 0
	for w := 0; w < concurrency; w++ {
		all = append(all, latencies[w]...)
		errs += errCounts[w]
	}
	return serve.Summarize(concurrency, all, errs, wall)
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8099", "qppserve base URL")
	levelsFlag := flag.String("levels", "2,8", "comma-separated concurrency levels")
	n := flag.Int("n", 400, "requests per level")
	templatesFlag := flag.String("templates", "", "comma-separated TPC-H templates (empty: the operator-level 14)")
	seed := flag.Int64("seed", 7, "query generation seed")
	out := flag.String("out", "", "output JSON file (empty: stdout)")
	wait := flag.Duration("wait", 60*time.Second, "how long to wait for /healthz before giving up")
	flag.Parse()

	levels, err := parseInts(*levelsFlag)
	if err != nil {
		log.Fatalf("qppload: %v", err)
	}
	templates := tpch.OperatorLevelTemplates
	if *templatesFlag != "" {
		if templates, err = parseInts(*templatesFlag); err != nil {
			log.Fatalf("qppload: %v", err)
		}
	}

	// Precompute the request stream: a deterministic query mix, JSON-
	// encoded once, reused at every level.
	perTemplate := (*n + len(templates) - 1) / len(templates)
	queries, err := tpch.GenWorkload(templates, perTemplate, *seed)
	if err != nil {
		log.Fatalf("qppload: %v", err)
	}
	if len(queries) > *n {
		queries = queries[:*n]
	}
	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		if bodies[i], err = json.Marshal(map[string]string{"sql": q.SQL}); err != nil {
			log.Fatalf("qppload: %v", err)
		}
	}

	client := &http.Client{Timeout: 30 * time.Second}
	version, err := waitHealthy(client, *addr, *wait)
	if err != nil {
		log.Fatalf("qppload: %v", err)
	}
	log.Printf("qppload: server healthy, model %s; %d requests per level", version, len(bodies))

	report := Report{
		Go:               runtime.Version(),
		Addr:             *addr,
		ModelVersion:     version,
		RequestsPerLevel: len(bodies),
		Templates:        templates,
		Seed:             *seed,
	}
	url := *addr + "/predict"
	for _, level := range levels {
		st := runLevel(client, url, bodies, level)
		log.Printf("qppload: concurrency %d: p50 %.2fms p99 %.2fms throughput %.1f req/s (%d errors)",
			level, st.P50Millis, st.P99Millis, st.ThroughputRPS, st.Errors)
		report.Levels = append(report.Levels, st)
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatalf("qppload: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("qppload: %v", err)
	}
}
