package qperf_test

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (regenerating the corresponding result and reporting its
// headline metric via b.ReportMetric), plus ablation benchmarks for the
// design choices DESIGN.md calls out and micro-benchmarks of the
// substrates. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks run at the quick scale so the whole suite
// completes in minutes; cmd/qppexp regenerates the full-scale numbers.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"qpp/internal/exec"
	"qpp/internal/experiments"
	"qpp/internal/mlearn"
	"qpp/internal/opt"
	"qpp/internal/qpp"
	"qpp/internal/tpch"
	"qpp/internal/vclock"
	"qpp/internal/workload"
)

var (
	benchEnvMu   sync.Mutex
	benchEnvDone bool
	benchEnv     *experiments.Env
	benchEnvErr  error
)

// benchmarkEnv builds the shared workload environment once per test
// binary. A failed build is cached (rebuilding would fail the same way
// and costs minutes), but the error carries the build configuration and
// every caller fails with that context instead of a bare message; the
// built/failed state is only recorded after BuildEnv returns, so a
// skipped caller never marks the environment as attempted.
func benchmarkEnv(b *testing.B) *experiments.Env {
	b.Helper()
	skipIfShort(b)
	cfg := experiments.Config{
		LargeSF:     0.008,
		SmallSF:     0.002,
		PerTemplate: 10,
		Seed:        42,
		TimeLimit:   300,
		Folds:       4,
	}
	benchEnvMu.Lock()
	if !benchEnvDone {
		benchEnv, benchEnvErr = experiments.BuildEnv(cfg)
		if benchEnvErr != nil {
			benchEnvErr = fmt.Errorf("BuildEnv(largeSF=%v smallSF=%v perTemplate=%d seed=%d): %w",
				cfg.LargeSF, cfg.SmallSF, cfg.PerTemplate, cfg.Seed, benchEnvErr)
		}
		benchEnvDone = true
	}
	env, err := benchEnv, benchEnvErr
	benchEnvMu.Unlock()
	if err != nil {
		b.Fatalf("shared benchmark env unavailable: %v", err)
	}
	return env
}

// skipIfShort keeps `go test -short -bench .` (and the -race CI pass)
// from paying for full workload builds; the figure numbers they produce
// are regeneration targets, not correctness checks.
func skipIfShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("workload-scale benchmark skipped in short mode")
	}
}

// BenchmarkBuildEnvParallel measures the worker-pool execution layer:
// each iteration builds the same environment serially and with 4
// workers and reports the wall-clock speedup. The two builds are
// asserted bit-identical, so the metric prices determinism-preserving
// parallelism, not a relaxed variant. On a single-core host (GOMAXPROCS
// reported alongside) the speedup necessarily stays near 1x — the
// workload is CPU-bound virtual-time simulation with no real I/O to
// overlap — and reaches its intended >=1.5x only with 2+ cores.
func BenchmarkBuildEnvParallel(b *testing.B) {
	skipIfShort(b)
	cfg := experiments.Config{
		LargeSF:     0.004,
		SmallSF:     0.002,
		PerTemplate: 6,
		Seed:        42,
		TimeLimit:   300,
		Folds:       4,
	}
	serialCfg, parCfg := cfg, cfg
	serialCfg.Parallelism = 1
	parCfg.Parallelism = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		serial, err := experiments.BuildEnv(serialCfg)
		if err != nil {
			b.Fatal(err)
		}
		serialSec := time.Since(t0).Seconds()
		t1 := time.Now()
		par, err := experiments.BuildEnv(parCfg)
		if err != nil {
			b.Fatal(err)
		}
		parSec := time.Since(t1).Seconds()
		if len(par.Large.Records) != len(serial.Large.Records) {
			b.Fatalf("parallel build diverged: %d records vs %d",
				len(par.Large.Records), len(serial.Large.Records))
		}
		for j, r := range par.Large.Records {
			if r.Time != serial.Large.Records[j].Time {
				b.Fatalf("record %d latency %v != serial %v", j, r.Time, serial.Large.Records[j].Time)
			}
		}
		b.ReportMetric(serialSec/parSec, "speedup")
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	}
}

// BenchmarkFig5OptimizerCostBaseline regenerates Figure 5 (Section 5.2).
func BenchmarkFig5OptimizerCostBaseline(b *testing.B) {
	env := benchmarkEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanRel, "meanRelErr")
		b.ReportMetric(res.MaxRel, "maxRelErr")
	}
}

// BenchmarkFig6PlanLevelLarge regenerates Figure 6(a) plan-level rows.
func BenchmarkFig6PlanLevelLarge(b *testing.B) {
	env := benchmarkEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PlanLargeMean, "planLargeMRE")
		b.ReportMetric(res.PlanSmallMean, "planSmallMRE")
	}
}

// BenchmarkFig6OperatorLevelLarge regenerates Figure 6(d)/(f) rows.
func BenchmarkFig6OperatorLevelLarge(b *testing.B) {
	env := benchmarkEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OpLargeMean, "opLargeMRE")
		b.ReportMetric(res.OpSmallMean, "opSmallMRE")
	}
}

// BenchmarkFig7FeatureSource regenerates Figure 7 (actual vs estimates).
func BenchmarkFig7FeatureSource(b *testing.B) {
	env := benchmarkEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(env)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Combos {
			if c.Train == "estimate" && c.Test == "estimate" {
				b.ReportMetric(c.PlanErr, "estEstPlanMRE")
			}
		}
	}
}

// BenchmarkFig8HybridStrategies regenerates Figure 8 (plan ordering
// strategies).
func BenchmarkFig8HybridStrategies(b *testing.B) {
	env := benchmarkEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(env)
		if err != nil {
			b.Fatal(err)
		}
		curve := res.Curves["error-based"]
		b.ReportMetric(curve[len(curve)-1].Error, "errorBasedFinalMRE")
	}
}

// BenchmarkFig9DynamicWorkload regenerates Figure 9 (leave one template out).
func BenchmarkFig9DynamicWorkload(b *testing.B) {
	env := benchmarkEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PlanMean, "planLevelMRE")
		b.ReportMetric(res.OnlineMean, "onlineMRE")
	}
}

// BenchmarkFig4SubplanAnalysis regenerates Figure 4 (common sub-plans).
func BenchmarkFig4SubplanAnalysis(b *testing.B) {
	env := benchmarkEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.SizeCDF)), "commonSizes")
	}
}

// --- Ablation benchmarks (design choices from DESIGN.md §4) ---

func ablationRecords(b *testing.B) []*qpp.QueryRecord {
	env := benchmarkEnv(b)
	return workload.FilterTemplates(env.Large.Records, tpch.OperatorLevelTemplates)
}

func evalPredictor(recs []*qpp.QueryRecord, f func(*qpp.QueryRecord) (float64, error)) float64 {
	var act, pred []float64
	for _, r := range recs {
		p, err := f(r)
		if err != nil {
			continue
		}
		act = append(act, r.Time)
		pred = append(pred, p)
	}
	return mlearn.MeanRelativeError(act, pred)
}

// BenchmarkAblationPlanModelSVRvsLinear compares the paper's SVR choice
// for plan-level models against linear regression.
func BenchmarkAblationPlanModelSVRvsLinear(b *testing.B) {
	env := benchmarkEnv(b)
	train, test := interleaveSplit(env.Large.Records)
	for i := 0; i < b.N; i++ {
		for _, kind := range []qpp.ModelKind{qpp.ModelSVR, qpp.ModelLinear} {
			cfg := qpp.DefaultPlanModelConfig()
			cfg.Kind = kind
			m, err := qpp.TrainPlanLevel(train, qpp.FeatEstimates, cfg)
			if err != nil {
				b.Fatal(err)
			}
			mre := evalPredictor(test, func(r *qpp.QueryRecord) (float64, error) {
				return m.Predict(r), nil
			})
			if kind == qpp.ModelSVR {
				b.ReportMetric(mre, "svrMRE")
			} else {
				b.ReportMetric(mre, "linearMRE")
			}
		}
	}
}

// BenchmarkAblationFeatureSelection compares forward feature selection
// against using the full Table-1 feature set (the paper observed the full
// set often performs worse).
func BenchmarkAblationFeatureSelection(b *testing.B) {
	env := benchmarkEnv(b)
	train, test := interleaveSplit(env.Large.Records)
	for i := 0; i < b.N; i++ {
		for _, fs := range []bool{true, false} {
			cfg := qpp.DefaultPlanModelConfig()
			cfg.FeatureSelection = fs
			m, err := qpp.TrainPlanLevel(train, qpp.FeatEstimates, cfg)
			if err != nil {
				b.Fatal(err)
			}
			mre := evalPredictor(test, func(r *qpp.QueryRecord) (float64, error) {
				return m.Predict(r), nil
			})
			if fs {
				b.ReportMetric(mre, "withSelectionMRE")
			} else {
				b.ReportMetric(mre, "allFeaturesMRE")
			}
		}
	}
}

// BenchmarkAblationChildTimeFeatures measures operator-level prediction
// with composed child times versus oracle actual child times, quantifying
// the error-propagation cost the paper discusses in Section 3.3.
func BenchmarkAblationChildTimeFeatures(b *testing.B) {
	recs := ablationRecords(b)
	ops, err := qpp.TrainOperatorModels(recs, qpp.FeatEstimates, qpp.OpModelConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred := evalPredictor(recs, func(r *qpp.QueryRecord) (float64, error) {
			return ops.Predict(r, qpp.ChildTimesPredicted)
		})
		oracle := evalPredictor(recs, func(r *qpp.QueryRecord) (float64, error) {
			return ops.Predict(r, qpp.ChildTimesActual)
		})
		b.ReportMetric(pred, "composedMRE")
		b.ReportMetric(oracle, "oracleChildMRE")
	}
}

// BenchmarkAblationPipelineOverlap quantifies how much of the cost-model
// error comes from CPU/IO overlap in the device model: it runs one query
// with and without the overlap term.
func BenchmarkAblationPipelineOverlap(b *testing.B) {
	skipIfShort(b)
	db, err := tpch.Generate(tpch.GenConfig{ScaleFactor: 0.005, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	q, err := tpch.GenQuery(1, newRand(7))
	if err != nil {
		b.Fatal(err)
	}
	node, err := opt.PlanSQL(db, q.SQL)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with := vclock.DefaultProfile()
		with.NoiseSigma = 0
		without := with
		without.OverlapFrac = 0
		r1, err := exec.Run(db, node, vclock.NewClock(with, 1), exec.Options{})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := exec.Run(db, node, vclock.NewClock(without, 1), exec.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r1.Elapsed, "withOverlapVsec")
		b.ReportMetric(r2.Elapsed, "noOverlapVsec")
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkPlanningThroughput measures optimizer latency across templates.
func BenchmarkPlanningThroughput(b *testing.B) {
	skipIfShort(b)
	db, err := tpch.Generate(tpch.GenConfig{ScaleFactor: 0.002, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]string, 0, len(tpch.Templates))
	rng := newRand(5)
	for _, t := range tpch.Templates {
		q, err := tpch.GenQuery(t, rng)
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q.SQL)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.PlanSQL(db, queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutionQ6 measures executor throughput on template 6.
func BenchmarkExecutionQ6(b *testing.B) {
	skipIfShort(b)
	db, err := tpch.Generate(tpch.GenConfig{ScaleFactor: 0.005, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	q, err := tpch.GenQuery(6, newRand(6))
	if err != nil {
		b.Fatal(err)
	}
	node, err := opt.PlanSQL(db, q.SQL)
	if err != nil {
		b.Fatal(err)
	}
	prof := vclock.DefaultProfile()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Run(db, node, vclock.NewClock(prof, int64(i)), exec.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkExecQuery executes one planned instance of a template end to
// end under the given engine options, reporting allocations. The plan is
// built once outside the timer; each iteration re-runs it on a fresh
// clock exactly as the workload layer does.
func benchmarkExecQuery(b *testing.B, tmpl int, opts exec.Options) {
	skipIfShort(b)
	db, err := tpch.Generate(tpch.GenConfig{ScaleFactor: 0.005, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	q, err := tpch.GenQuery(tmpl, newRand(int64(tmpl)))
	if err != nil {
		b.Fatal(err)
	}
	node, err := opt.PlanSQL(db, q.SQL)
	if err != nil {
		b.Fatal(err)
	}
	prof := vclock.DefaultProfile()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Run(db, node, vclock.NewClock(prof, int64(i)), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExprCompiled runs the Q1/Q6/Q18 hot paths through the
// expression compiler (the default execution mode).
func BenchmarkExprCompiled(b *testing.B) {
	for _, tmpl := range []int{1, 6, 18} {
		b.Run(fmt.Sprintf("q%d", tmpl), func(b *testing.B) { benchmarkExecQuery(b, tmpl, exec.Options{}) })
	}
}

// BenchmarkExprInterpreted is the same workload with Options.Interpret:
// the tree-walking Scalar.Eval path the compiler replaced. The ratio to
// BenchmarkExprCompiled is the headline speedup recorded in
// BENCH_exec.json.
func BenchmarkExprInterpreted(b *testing.B) {
	for _, tmpl := range []int{1, 6, 18} {
		b.Run(fmt.Sprintf("q%d", tmpl), func(b *testing.B) { benchmarkExecQuery(b, tmpl, exec.Options{Interpret: true}) })
	}
}

// BenchmarkExecutionBatch runs the same Q1/Q6/Q18 hot paths through the
// batched columnar engine (Options.Vectorize). The ratio to
// BenchmarkExprCompiled is the batch-engine speedup recorded in
// BENCH_exec.json; results and virtual clock readings are bit-identical
// to the row engine by construction (see the differential suite).
func BenchmarkExecutionBatch(b *testing.B) {
	for _, tmpl := range []int{1, 6, 18} {
		b.Run(fmt.Sprintf("q%d", tmpl), func(b *testing.B) { benchmarkExecQuery(b, tmpl, exec.Options{Vectorize: true}) })
	}
}

// BenchmarkSVRTraining measures nu-SVR fit time at workload scale.
func BenchmarkSVRTraining(b *testing.B) {
	skipIfShort(b)
	rng := newRand(8)
	n := 400
	x := mlearn.NewMatrix(n, 10)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 10; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		y[i] = x.At(i, 0)*2 + x.At(i, 1)*x.At(i, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := mlearn.NewNuSVR(10, 0.5)
		if err := s.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanFeatureExtraction measures Table-1 feature extraction.
func BenchmarkPlanFeatureExtraction(b *testing.B) {
	env := benchmarkEnv(b)
	recs := env.Large.Records
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qpp.PlanFeatures(recs[i%len(recs)].Root, qpp.FeatEstimates)
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// interleaveSplit produces a template-balanced train/test split (records
// are generated grouped by template, so a prefix split would hold out
// whole templates and measure the dynamic scenario instead).
func interleaveSplit(recs []*qpp.QueryRecord) (train, test []*qpp.QueryRecord) {
	for i, r := range recs {
		if i%4 == 3 {
			test = append(test, r)
		} else {
			train = append(train, r)
		}
	}
	return train, test
}
