module qpp

go 1.22
